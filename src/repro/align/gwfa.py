"""GWFA: the graph wavefront algorithm (Zhang et al. 2022, minigraph).

Bridges the gap between two anchors during chaining: given a start
position in the graph, it finds the cheapest (unit-cost) alignment of the
query along *some* walk.  Each node conceptually owns its own DP matrix
(query on one axis, node sequence on the other); wavefront diagonals live
inside a node and, on reaching the node end, expand into every child
node's matrix (Figure 4e) — producing the scattered, irregular diagonal
set the paper highlights, while still computing far fewer cells than full
DP.

States are (node, diagonal) pairs holding the furthest-reaching query
offset; diagonal ``k = j - i`` with ``j`` the query offset and ``i`` the
offset inside the node.  The start position is modelled as a virtual
node holding the start node's suffix, so cycles re-entering the start
node see its full sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AlignmentError
from repro.graph.model import SequenceGraph
from repro.uarch.events import NULL_PROBE, MachineProbe, OpClass

_NONE = -(10**9)
_START = -1  # virtual node id for the trimmed start node


@dataclass
class GWFAStats:
    """Work counters for one GWFA run."""

    scores: int = 0
    states_processed: int = 0
    expansions: int = 0          # diagonal spills into child nodes
    cells_extended: int = 0
    max_frontier: int = 0


@dataclass(frozen=True)
class GWFAResult:
    """Best unit-cost alignment of the query along some walk."""

    distance: int
    end_node: int
    end_offset: int
    stats: GWFAStats = field(compare=False, default_factory=GWFAStats)


class _GWFARun:
    """One GWFA alignment: query vs graph from a fixed start position."""

    def __init__(
        self,
        query: str,
        graph: SequenceGraph,
        start_node: int,
        start_offset: int,
        probe: MachineProbe,
        max_score: int | None,
    ) -> None:
        if not query:
            raise AlignmentError("empty query")
        node = graph.node(start_node)
        if not 0 <= start_offset < len(node):
            raise AlignmentError(
                f"start offset {start_offset} out of range for node {start_node}"
            )
        self.query = query
        self.graph = graph
        self.start_node = start_node
        self.start_offset = start_offset
        self.probe = probe
        self.limit = max_score if max_score is not None else 2 * len(query) + 16
        self.stats = GWFAStats()
        self._start_suffix = node.sequence[start_offset:]
        self._sequences: dict[int, str] = {}

    def sequence_of(self, node_id: int) -> str:
        if node_id == _START:
            return self._start_suffix
        cached = self._sequences.get(node_id)
        if cached is None:
            cached = self.graph.node(node_id).sequence
            self._sequences[node_id] = cached
        return cached

    def successors_of(self, node_id: int) -> list[int]:
        if node_id == _START:
            node_id = self.start_node
        return self.graph.successors(node_id)

    # ------------------------------------------------------------------

    def run(self) -> GWFAResult:
        m = len(self.query)
        frontier: dict[tuple[int, int], int] = {(_START, 0): 0}
        self._extend_all(frontier)
        score = 0
        goal = self._goal(frontier)
        while goal is None:
            if score >= self.limit:
                raise AlignmentError(f"gwfa exceeded max score {self.limit}")
            score += 1
            self.stats.scores += 1
            frontier = self._next_wavefront(frontier)
            if not frontier:
                raise AlignmentError("gwfa wavefront died")
            self._extend_all(frontier)
            self.stats.max_frontier = max(self.stats.max_frontier, len(frontier))
            goal = self._goal(frontier)
        end_node, end_k, end_j = goal
        end_i = end_j - end_k
        if end_node == _START:
            return GWFAResult(score, self.start_node, self.start_offset + end_i, self.stats)
        return GWFAResult(score, end_node, end_i, self.stats)

    def _goal(self, frontier: dict[tuple[int, int], int]) -> tuple[int, int, int] | None:
        m = len(self.query)
        for (node_id, k), j in frontier.items():
            if j >= m:
                return node_id, k, j
        return None

    def _extend_all(self, frontier: dict[tuple[int, int], int]) -> None:
        """Greedy match extension, cascading node-end expansions (cost 0).

        Per-state events buffer in Python lists and flush as one block
        per wavefront, matching the kernel's natural batch size.
        """
        m = len(self.query)
        probe = self.probe
        worklist = list(frontier.items())
        state_loads: list[int] = []
        child_loads: list[int] = []
        child_branches: list[bool] = []
        match_outcomes: list[bool] = []
        match_bulk = 0
        guards = 0
        alu_total = 0
        alu_dependent = 0
        while worklist:
            (node_id, k), j = worklist.pop()
            if frontier.get((node_id, k), _NONE) > j:
                continue
            sequence = self.sequence_of(node_id)
            state_loads.append(abs(node_id) * 64)
            i = j - k
            start_j = j
            while i < len(sequence) and j < m and sequence[i] == self.query[j]:
                i += 1
                j += 1
            advanced = j - start_j
            self.stats.cells_extended += advanced
            # Wavefront bookkeeping + per-character compare/advance ops.
            alu_total += 16 + 8 * advanced + max(1, advanced // 2)
            alu_dependent += max(1, advanced // 2)
            # The match loop-back branch: boundary outcomes simulated,
            # the saturated middle credited in bulk (like branch_run).
            trained = min(advanced, 3)
            match_outcomes.extend([True] * trained)
            match_bulk += advanced - trained
            match_outcomes.append(False)
            guards += 1
            if j > frontier.get((node_id, k), _NONE):
                frontier[(node_id, k)] = j
            if i >= len(sequence) and j < m:
                # Node exhausted: spill this diagonal into each child.
                # The child dispatch is data-dependent control divergence
                # (which child, how many), worse for longer queries that
                # cross more nodes (the paper's lr-vs-cr contrast).
                for child in self.successors_of(node_id):
                    self.stats.expansions += 1
                    child_loads.append(child * 64)
                    child_branches.append(((child * 2654435761) >> 13) & 1 == 1)
                    child_key = (child, j)  # child i' = 0 -> k' = j
                    if j > frontier.get(child_key, _NONE):
                        frontier[child_key] = j
                        worklist.append((child_key, j))
        probe.load_block(state_loads, 8)
        probe.alu_bulk(OpClass.SCALAR_ALU, alu_total, alu_dependent)
        probe.branch_trace(50, match_outcomes)
        if match_bulk:
            probe.branch_bulk(50, match_bulk)
        # Bounds guards: almost always in-range, well predicted.
        probe.branch_trace(52, [False] * guards)
        probe.branch_trace(54, [False] * guards)
        probe.load_block(child_loads, 8)
        probe.branch_trace(53, child_branches)

    def _next_wavefront(
        self, frontier: dict[tuple[int, int], int]
    ) -> dict[tuple[int, int], int]:
        """One unit-cost step: mismatch, insertion, deletion."""
        m = len(self.query)
        probe = self.probe
        out: dict[tuple[int, int], int] = {}

        def offer(node_id: int, k: int, j: int) -> None:
            length = len(self.sequence_of(node_id))
            i = j - k
            if j < 0 or j > m or i < 0 or i > length:
                return
            if i == length and j < m:
                children = self.successors_of(node_id)
                if children:
                    for child in children:
                        self.stats.expansions += 1
                        offer(child, j, j)
                    return
                # Graph sink: keep the state so trailing insertions can
                # still consume the rest of the query.
            key = (node_id, k)
            if j > out.get(key, _NONE):
                out[key] = j

        m = len(self.query)
        state_loads: list[int] = []
        range_branches: list[bool] = []
        for (node_id, k), j in frontier.items():
            self.stats.states_processed += 1
            state_loads.append(abs(node_id) * 64 + (k % 64))
            range_branches.append(j < m)  # in-range check, predictable
            length = len(self.sequence_of(node_id))
            i = j - k
            offer(node_id, k, j + 1)      # mismatch
            offer(node_id, k + 1, j + 1)  # insertion (consume query only)
            offer(node_id, k - 1, j)      # deletion (consume node base only)
            if i >= length:
                # The state sat at a node end: the same edits apply to the
                # first base of each child matrix.
                for child in self.successors_of(node_id):
                    offer(child, j, j + 1)      # mismatch
                    offer(child, j + 1, j + 1)  # insertion at child entry
                    offer(child, j - 1, j)      # deletion of child's first base
        probe.load_block(state_loads, 8)
        # 20 bound-check ops for the three offers + the 4-deep FR max chain.
        probe.alu_bulk(
            OpClass.SCALAR_ALU, 24 * len(state_loads), 4 * len(state_loads)
        )
        probe.branch_trace(51, range_branches)
        return out


def gwfa_align(
    query: str,
    graph: SequenceGraph,
    start_node: int,
    start_offset: int = 0,
    probe: MachineProbe = NULL_PROBE,
    max_score: int | None = None,
) -> GWFAResult:
    """Align all of *query* along walks from (start_node, start_offset).

    The walk's end is free; returns the minimum edit distance, the end
    position of the best walk, and work statistics.  Cycles are allowed.
    """
    run = _GWFARun(query, graph, start_node, start_offset, probe, max_score)
    return run.run()


def graph_edit_distance_from(
    query: str, graph: SequenceGraph, start_node: int, start_offset: int = 0
) -> int:
    """Scalar oracle: min edit distance of *query* along any walk from the
    start position (free end), by label-correcting over base rows."""
    import heapq

    m = len(query)
    rows_seen: set[tuple[int, int]] = {(start_node, start_offset)}
    stack = [(start_node, start_offset)]
    while stack:
        node_id, offset = stack.pop()
        if offset + 1 < len(graph.node(node_id)):
            nxt = [(node_id, offset + 1)]
        else:
            nxt = [(child, 0) for child in graph.successors(node_id)]
        for item in nxt:
            if item not in rows_seen:
                rows_seen.add(item)
                stack.append(item)

    def parents(row: tuple[int, int]) -> list[tuple[int, int]]:
        node_id, offset = row
        if offset > 0:
            candidates = [(node_id, offset - 1)]
        else:
            candidates = [
                (p, len(graph.node(p)) - 1) for p in graph.predecessors(node_id)
            ]
        return [r for r in candidates if r in rows_seen]

    heap = sorted(rows_seen)
    in_queue = set(heap)
    heapq.heapify(heap)
    values: dict[tuple[int, int], list[int]] = {}
    virtual = list(range(m + 1))
    while heap:
        row = heapq.heappop(heap)
        in_queue.discard(row)
        node_id, offset = row
        base = graph.node(node_id).sequence[offset]
        sources = [values[p] for p in parents(row) if p in values]
        if row == (start_node, start_offset):
            sources = sources + [virtual]
        if not sources:
            continue
        new = [0] * (m + 1)
        new[0] = min(source[0] + 1 for source in sources)
        for j in range(1, m + 1):
            best = new[j - 1] + 1
            for source in sources:
                best = min(best, source[j] + 1, source[j - 1] + (query[j - 1] != base))
            new[j] = best
        old = values.get(row)
        if old is None or any(n < o for n, o in zip(new, old)):
            if old is not None:
                new = [min(n, o) for n, o in zip(new, old)]
            values[row] = new
            if offset + 1 < len(graph.node(node_id)):
                children = [(node_id, offset + 1)]
            else:
                children = [(child, 0) for child in graph.successors(node_id)]
            for child in children:
                if child in rows_seen and child not in in_queue:
                    heapq.heappush(heap, child)
                    in_queue.add(child)
    best = m  # all-insertions alignment (empty walk)
    for value in values.values():
        best = min(best, value[m])
    return best
