"""Seed clustering and anchor chaining.

The middle stages of the Seq2Graph mapping pipeline (Figure 1.2):
*clustering* groups seed hits that are close both on the read and in the
graph — which on a graph requires shortest-path distance queries instead
of coordinate subtraction (Section 2.1) — and *chaining* selects a
colinear high-scoring subset of anchors with the minigraph-style 2D DP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import AlignmentError
from repro.graph.distance import UNREACHABLE, GraphPosition, min_distance
from repro.graph.model import SequenceGraph
from repro.index.minimizer import Seed
from repro.uarch.events import NULL_PROBE, MachineProbe, OpClass


@dataclass(frozen=True)
class Cluster:
    """A group of seeds presumed to come from one alignment locus."""

    seeds: tuple[Seed, ...]

    def __len__(self) -> int:
        return len(self.seeds)

    @property
    def read_span(self) -> tuple[int, int]:
        positions = [seed.read_position for seed in self.seeds]
        return min(positions), max(positions)

    @property
    def node_ids(self) -> set[int]:
        return {seed.node_id for seed in self.seeds}


@dataclass
class ClusterStats:
    """Work counters for clustering (distance queries dominate)."""

    distance_queries: int = 0
    seeds_in: int = 0
    clusters_out: int = 0


def cluster_seeds(
    graph: SequenceGraph,
    seeds: list[Seed],
    max_graph_gap: int = 1000,
    max_read_gap: int = 1000,
    min_cluster_size: int = 1,
    stats: ClusterStats | None = None,
) -> list[Cluster]:
    """Group seeds by joint read/graph locality.

    Seeds sorted by read position are greedily attached to the most recent
    cluster whose tail seed is within *max_read_gap* on the read and
    within *max_graph_gap* by shortest-path distance in the graph — the
    graph-distance query being the expensive step the paper calls out.
    """
    stats = stats if stats is not None else ClusterStats()
    stats.seeds_in += len(seeds)
    ordered = sorted(
        (seed for seed in seeds if not seed.is_reverse),
        key=lambda seed: (seed.read_position, seed.node_id, seed.node_offset),
    )
    clusters: list[list[Seed]] = []
    for seed in ordered:
        placed = False
        for cluster in reversed(clusters[-8:]):
            tail = cluster[-1]
            read_gap = seed.read_position - tail.read_position
            if read_gap > max_read_gap:
                continue
            stats.distance_queries += 1
            graph_gap = min_distance(
                graph,
                GraphPosition(tail.node_id, tail.node_offset),
                GraphPosition(seed.node_id, seed.node_offset),
                limit=max_graph_gap,
            )
            if graph_gap != UNREACHABLE and abs(graph_gap - read_gap) <= max_read_gap:
                cluster.append(seed)
                placed = True
                break
        if not placed:
            clusters.append([seed])
    out = [
        Cluster(tuple(cluster))
        for cluster in clusters
        if len(cluster) >= min_cluster_size
    ]
    stats.clusters_out += len(out)
    return out


@dataclass(frozen=True)
class Anchor:
    """A chaining anchor: an exact match of *length* bases.

    ``target_position`` is a linearized coordinate: genomic offset for
    Seq2Seq, or a path/topological offset estimate for Seq2Graph.
    """

    read_position: int
    target_position: int
    length: int
    node_id: int = -1


@dataclass(frozen=True)
class ChainResult:
    """Best chain of anchors plus DP work counters."""

    anchors: tuple[Anchor, ...]
    score: float
    pairs_evaluated: int

    def __len__(self) -> int:
        return len(self.anchors)


def chain_anchors(
    anchors: list[Anchor],
    max_gap: int = 5000,
    max_lookback: int = 64,
    gap_scale: float = 0.05,
    probe: MachineProbe = NULL_PROBE,
) -> ChainResult:
    """Minigraph/minimap2-style 2D DP chaining.

    ``f[i] = max(w_i, max_j f[j] + min(w_i, overlap-free span) - gap_cost)``
    over the previous *max_lookback* anchors sorted by target position.
    Gap cost is the coordinate-difference penalty with a log term, as in
    minimap2's chaining score.
    """
    if not anchors:
        return ChainResult(anchors=(), score=0.0, pairs_evaluated=0)
    ordered = sorted(anchors, key=lambda a: (a.target_position, a.read_position))
    n = len(ordered)
    f = [float(a.length) for a in ordered]
    back = [-1] * n
    pairs = 0
    for i in range(n):
        ai = ordered[i]
        lo = max(0, i - max_lookback)
        for j in range(lo, i):
            aj = ordered[j]
            read_gap = ai.read_position - (aj.read_position + aj.length)
            target_gap = ai.target_position - (aj.target_position + aj.length)
            pairs += 1
            probe.load(j * 32, 32)
            probe.alu(OpClass.SCALAR_ALU, 8)
            ok = read_gap >= 0 and target_gap >= 0 and max(read_gap, target_gap) <= max_gap
            probe.branch(site=60, taken=ok)
            if not ok:
                continue
            gap = abs(read_gap - target_gap)
            cost = gap_scale * gap + (0.5 * math.log2(gap + 1) if gap else 0.0)
            probe.alu(OpClass.VECTOR_FP, 3)
            candidate = f[j] + ai.length - cost
            better = candidate > f[i]
            probe.branch(site=61, taken=better)
            if better:
                f[i] = candidate
                back[i] = j
    best_index = max(range(n), key=lambda i: f[i])
    chain: list[Anchor] = []
    index = best_index
    while index != -1:
        chain.append(ordered[index])
        index = back[index]
    chain.reverse()
    return ChainResult(anchors=tuple(chain), score=f[best_index], pairs_evaluated=pairs)


def anchors_from_seeds(
    graph: SequenceGraph, seeds: list[Seed], kmer_length: int
) -> list[Anchor]:
    """Convert graph seeds into chaining anchors.

    Target coordinates are linearized by topological node offsets (the
    sum of node lengths before the node in sorted id order) — a cheap
    surrogate for minigraph's graph coordinate estimation.
    """
    if not seeds:
        return []
    offsets: dict[int, int] = {}
    total = 0
    for node_id in sorted(graph.node_ids()):
        offsets[node_id] = total
        total += len(graph.node(node_id))
    out = []
    for seed in seeds:
        if seed.node_id not in offsets:
            raise AlignmentError(f"seed references unknown node {seed.node_id}")
        out.append(
            Anchor(
                read_position=seed.read_position,
                target_position=offsets[seed.node_id] + seed.node_offset,
                length=kmer_length,
                node_id=seed.node_id,
            )
        )
    return out
