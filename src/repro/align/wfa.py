"""WFA: the wavefront alignment algorithm (Marco-Sola et al. 2021).

WFA computes alignment distance in O(ns) by tracking, per score s and
diagonal k, only the furthest-reaching (FR) cell, alternating a *Next*
step (push every diagonal one edit further) with an *Extend* step (slide
each diagonal down exact matches for free) — Figure 4d.  Both the
edit-distance and the gap-affine variants are implemented; wfmash-style
all-to-all alignment and the TSU GPU kernel build on them.

Extend-step statistics (how far each diagonal slid) are recorded because
the paper's Figure 9 analysis hinges on their distribution: at 10 kbp,
74% of Extend steps move so little that a 32-thread GPU block wastes
almost all its lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.scoring import AffineScoring
from repro.errors import AlignmentError
from repro.uarch.events import NULL_PROBE, MachineProbe, OpClass

_NONE = -(10**9)


@dataclass
class WFAStats:
    """Work counters for one WFA run."""

    scores: int = 0
    diagonals_processed: int = 0
    cells_extended: int = 0
    extend_lengths: list[int] = field(default_factory=list)


@dataclass(frozen=True)
class WFAResult:
    """Distance plus work statistics."""

    distance: int
    stats: WFAStats


def wfa_edit_distance(
    a: str, b: str, probe: MachineProbe = NULL_PROBE, record_extends: bool = False
) -> WFAResult:
    """Edit distance of *a* vs *b* with the edit-distance WFA.

    Diagonal convention: ``k = i - j`` with ``i`` an offset in *a*.  The
    FR value stored per diagonal is ``i``.
    """
    if not a or not b:
        raise AlignmentError("wfa requires non-empty sequences")
    n, m = len(a), len(b)
    target_k = n - m
    stats = WFAStats()

    wavefront: dict[int, int] = {0: 0}
    _extend(wavefront, a, b, stats, probe, record_extends)
    score = 0
    while wavefront.get(target_k, _NONE) < n:
        score += 1
        stats.scores += 1
        next_wavefront: dict[int, int] = {}
        low = min(wavefront) - 1
        high = max(wavefront) + 1
        for k in range(low, high + 1):
            best = max(
                wavefront.get(k, _NONE) + 1,       # mismatch
                wavefront.get(k - 1, _NONE) + 1,   # deletion (consume a)
                wavefront.get(k + 1, _NONE),       # insertion (consume b)
            )
            probe.alu(OpClass.SCALAR_ALU, 4)
            probe.load(k * 4, 4)
            if best < 0:
                continue
            i = min(best, n)
            j = i - k
            if j < 0 or j > m:
                continue
            next_wavefront[k] = i
            stats.diagonals_processed += 1
        wavefront = next_wavefront
        _extend(wavefront, a, b, stats, probe, record_extends)
        if not wavefront:
            raise AlignmentError("wavefront died before reaching the target")
    return WFAResult(distance=score, stats=stats)


def _extend(
    wavefront: dict[int, int],
    a: str,
    b: str,
    stats: WFAStats,
    probe: MachineProbe,
    record_extends: bool,
) -> None:
    n, m = len(a), len(b)
    for k in list(wavefront):
        i = wavefront[k]
        j = i - k
        start = i
        while i < n and j < m and a[i] == b[j]:
            i += 1
            j += 1
        probe.alu(OpClass.SCALAR_ALU, 2 * max(1, i - start))
        probe.branch_run(site=40, taken_count=i - start)
        wavefront[k] = i
        stats.cells_extended += i - start
        if record_extends:
            stats.extend_lengths.append(i - start)


@dataclass(frozen=True)
class AffinePenalties:
    """WFA gap-affine penalties (match costs 0)."""

    mismatch: int = 4
    gap_open: int = 6
    gap_extend: int = 2

    def __post_init__(self) -> None:
        if min(self.mismatch, self.gap_extend) <= 0 or self.gap_open < 0:
            raise ValueError("mismatch/gap_extend must be positive")

    @classmethod
    def from_scoring(cls, scoring: AffineScoring) -> "AffinePenalties":
        return cls(
            mismatch=scoring.mismatch,
            gap_open=scoring.gap_open,
            gap_extend=scoring.gap_extend,
        )


def wfa_affine(
    a: str,
    b: str,
    penalties: AffinePenalties = AffinePenalties(),
    probe: MachineProbe = NULL_PROBE,
) -> WFAResult:
    """Gap-affine global alignment cost via WFA2's M/I/D wavefronts.

    A gap of length L costs ``gap_open + L * gap_extend``; matches are
    free; mismatches cost ``mismatch``.
    """
    if not a or not b:
        raise AlignmentError("wfa requires non-empty sequences")
    n, m = len(a), len(b)
    target_k = n - m
    x, o, e = penalties.mismatch, penalties.gap_open, penalties.gap_extend
    stats = WFAStats()

    m_waves: dict[int, dict[int, int]] = {}
    i_waves: dict[int, dict[int, int]] = {}
    d_waves: dict[int, dict[int, int]] = {}
    m_waves[0] = {0: 0}
    _extend(m_waves[0], a, b, stats, probe, False)
    score = 0
    max_score = (n + m) * max(x, o + e) + 1
    while m_waves.get(score, {}).get(target_k, _NONE) < n:
        score += 1
        stats.scores += 1
        if score > max_score:
            raise AlignmentError("affine WFA failed to converge")
        m_next: dict[int, int] = {}
        i_next: dict[int, int] = {}
        d_next: dict[int, int] = {}
        source_m_gap = m_waves.get(score - o - e, {})
        source_i = i_waves.get(score - e, {})
        source_d = d_waves.get(score - e, {})
        source_m_sub = m_waves.get(score - x, {})
        ks: set[int] = set()
        for source in (source_m_gap, source_i, source_d, source_m_sub):
            for k in source:
                ks.update((k - 1, k, k + 1))
        for k in sorted(ks):
            # I = gap in b (consume a): from k-1, offset+1.
            i_val = max(source_m_gap.get(k - 1, _NONE), source_i.get(k - 1, _NONE)) + 1
            # D = gap in a (consume b): from k+1, offset unchanged.
            d_val = max(source_m_gap.get(k + 1, _NONE), source_d.get(k + 1, _NONE))
            m_val = max(source_m_sub.get(k, _NONE) + 1, i_val, d_val)
            probe.alu(OpClass.SCALAR_ALU, 6)
            probe.load(k * 4, 12)
            if i_val >= 0 and i_val <= n and 0 <= i_val - k <= m:
                i_next[k] = i_val
            if d_val >= 0 and d_val <= n and 0 <= d_val - k <= m:
                d_next[k] = d_val
            if m_val >= 0 and m_val <= n and 0 <= m_val - k <= m:
                m_next[k] = m_val
                stats.diagonals_processed += 1
        _extend(m_next, a, b, stats, probe, False)
        m_waves[score] = m_next
        i_waves[score] = i_next
        d_waves[score] = d_next
    return WFAResult(distance=score, stats=stats)


def affine_global_cost(
    a: str, b: str, penalties: AffinePenalties = AffinePenalties()
) -> int:
    """O(nm) gap-affine global alignment cost (correctness oracle)."""
    x, o, e = penalties.mismatch, penalties.gap_open, penalties.gap_extend
    big = 10**9
    n, m = len(a), len(b)
    h = [0] + [o + j * e for j in range(1, m + 1)]
    vertical = [big] * (m + 1)  # gaps consuming a (across rows)
    for i in range(1, n + 1):
        diag_prev = h[0]
        h[0] = o + i * e
        horizontal = big  # gaps consuming b (within this row)
        for j in range(1, m + 1):
            vertical[j] = min(h[j] + o + e, vertical[j] + e)
            horizontal = min(h[j - 1] + o + e, horizontal + e)
            sub = diag_prev + (0 if a[i - 1] == b[j - 1] else x)
            diag_prev = h[j]
            h[j] = min(sub, vertical[j], horizontal)
    return h[m]
