"""Alignment substrate: all DP kernels and the chaining/clustering stages."""

from repro.align.chain import (
    Anchor,
    ChainResult,
    Cluster,
    ClusterStats,
    anchors_from_seeds,
    chain_anchors,
    cluster_seeds,
)
from repro.align.gbv import GBV, GBVResult, gbv_align, graph_edit_distance_scalar
from repro.align.gssw import (
    GSSW,
    GraphAlignmentResult,
    graph_smith_waterman_scalar,
    gssw_align,
)
from repro.align.gwfa import GWFAResult, GWFAStats, graph_edit_distance_from, gwfa_align
from repro.align.myers import (
    MyersBitvector,
    MyersMatch,
    best_substring_distance,
    edit_distance,
)
from repro.align.poa import PoaAlignment, PoaGraph, abpoa_align, poa_consensus
from repro.align.scoring import (
    AffineScoring,
    AlignmentResult,
    CigarOp,
    VG_DEFAULT,
    cigar_string,
)
from repro.align.smith_waterman import (
    StripedSmithWaterman,
    smith_waterman,
    striped_smith_waterman,
)
from repro.align.wfa import (
    AffinePenalties,
    WFAResult,
    WFAStats,
    affine_global_cost,
    wfa_affine,
    wfa_edit_distance,
)

__all__ = [
    "Anchor", "ChainResult", "Cluster", "ClusterStats", "anchors_from_seeds",
    "chain_anchors", "cluster_seeds",
    "GBV", "GBVResult", "gbv_align", "graph_edit_distance_scalar",
    "GSSW", "GraphAlignmentResult", "graph_smith_waterman_scalar", "gssw_align",
    "GWFAResult", "GWFAStats", "graph_edit_distance_from", "gwfa_align",
    "MyersBitvector", "MyersMatch", "best_substring_distance", "edit_distance",
    "PoaAlignment", "PoaGraph", "abpoa_align", "poa_consensus",
    "AffineScoring", "AlignmentResult", "CigarOp", "VG_DEFAULT", "cigar_string",
    "StripedSmithWaterman", "smith_waterman", "striped_smith_waterman",
    "AffinePenalties", "WFAResult", "WFAStats", "affine_global_cost",
    "wfa_affine", "wfa_edit_distance",
]
