"""Myers's bit-parallel approximate string matching (Myers 1999).

The non-affine edit-distance aligner GraphAligner builds on: dynamic
programming columns are encoded as 64-bit delta vectors (Pv/Mv), so one
machine word advances 64 DP cells.  This module implements the blocked
(multi-word) variant in the Hyyrö/Edlib formulation, used both as the
Seq2Seq baseline and as the row-update primitive the GBV kernel models.

Two boundary conditions are supported:

* ``search`` — pattern global, text start free (D[i][0] = 0): returns the
  best edit distance of the pattern against any text substring.
* ``global_text`` — pattern and text both global (NW edit distance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AlignmentError
from repro.uarch.events import NULL_PROBE, MachineProbe, OpClass

WORD_SIZE = 64
_WORD_MASK = (1 << WORD_SIZE) - 1
_HIGH_BIT = 1 << (WORD_SIZE - 1)


def _advance_block(
    pv: int, mv: int, eq: int, hin: int
) -> tuple[int, int, int, int, int]:
    """Advance one 64-cell block by one text character (Edlib's kernel).

    Returns (pv_out, mv_out, hout, ph, mh): hout in {-1, 0, +1} is the
    score delta at the block's last row; ph/mh are the pre-shift
    horizontal delta vectors (bit i = delta at pattern row i+1), needed
    to track the score when the pattern ends mid-block.
    """
    hin_neg = 1 if hin < 0 else 0
    xv = eq | mv
    eq |= hin_neg
    xh = ((((eq & pv) + pv) & _WORD_MASK) ^ pv) | eq
    ph = mv | (~(xh | pv) & _WORD_MASK)
    mh = pv & xh
    hout = ((ph & _HIGH_BIT) >> (WORD_SIZE - 1)) - ((mh & _HIGH_BIT) >> (WORD_SIZE - 1))
    ph_shift = ((ph << 1) & _WORD_MASK) | (1 if hin > 0 else 0)
    mh_shift = ((mh << 1) & _WORD_MASK) | hin_neg
    pv_out = mh_shift | (~(xv | ph_shift) & _WORD_MASK)
    mv_out = ph_shift & xv
    return pv_out, mv_out, hout, ph, mh


@dataclass(frozen=True)
class MyersMatch:
    """Best match of a pattern in a text."""

    distance: int
    text_end: int  # exclusive end position of the best match


class MyersBitvector:
    """Blocked Myers bit-parallel matcher for one pattern.

    Args:
        pattern: The pattern (query) string; any ASCII alphabet.
        probe: Optional machine probe (scalar 64-bit ops, per Figure 8's
            note that GBV's bitvectors count as scalar operations).
    """

    def __init__(self, pattern: str, probe: MachineProbe = NULL_PROBE) -> None:
        if not pattern:
            raise AlignmentError("empty pattern")
        self.pattern = pattern
        self.probe = probe
        self.blocks = (len(pattern) + WORD_SIZE - 1) // WORD_SIZE
        self._peq: dict[str, list[int]] = {}
        for index, char in enumerate(pattern):
            block, bit = divmod(index, WORD_SIZE)
            masks = self._peq.setdefault(char, [0] * self.blocks)
            masks[block] |= 1 << bit
        self._last_bit = (len(pattern) - 1) % WORD_SIZE

    def search(self, text: str) -> MyersMatch:
        """Best edit distance of the pattern against any substring of *text*."""
        return self._scan(text, text_global=False)

    def global_distance(self, text: str) -> int:
        """Needleman–Wunsch edit distance pattern vs the whole *text*."""
        return self._scan(text, text_global=True).distance

    def _scan(self, text: str, text_global: bool) -> MyersMatch:
        if not text:
            raise AlignmentError("empty text")
        probe = self.probe
        pv = [_WORD_MASK] * self.blocks
        mv = [0] * self.blocks
        score = len(self.pattern)
        best = score if not text_global else None
        best_end = 0
        zeros = [0] * self.blocks
        last_mask = 1 << self._last_bit
        for j, char in enumerate(text):
            eqs = self._peq.get(char, zeros)
            hin = 1 if text_global else 0
            ph = mh = 0
            for block in range(self.blocks):
                pv[block], mv[block], hin, ph, mh = _advance_block(
                    pv[block], mv[block], eqs[block], hin
                )
                probe.alu(OpClass.SCALAR_ALU, 14, dependent=True)
                probe.load(block * 16, 16)
            if ph & last_mask:
                score += 1
            elif mh & last_mask:
                score -= 1
            if not text_global:
                improved = score < best
                probe.branch(site=20, taken=improved)
                if improved:
                    best = score
                    best_end = j + 1
        if text_global:
            return MyersMatch(distance=score, text_end=len(text))
        return MyersMatch(distance=best, text_end=best_end)


def edit_distance(a: str, b: str) -> int:
    """Plain O(nm) edit distance (correctness oracle)."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, cb in enumerate(b, start=1):
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (ca != cb),
            )
        previous = current
    return previous[-1]


def best_substring_distance(pattern: str, text: str) -> tuple[int, int]:
    """O(nm) semi-global oracle: (best distance, best end)."""
    previous = [0] * (len(text) + 1)
    for i, pc in enumerate(pattern, start=1):
        current = [i] + [0] * len(text)
        for j, tc in enumerate(text, start=1):
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (pc != tc),
            )
        previous = current
    best = min(previous)
    best_end = previous.index(best)
    return best, best_end
