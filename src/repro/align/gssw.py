"""GSSW: graph SIMD Smith–Waterman (Zhao et al., used by vg map).

Aligns a short query to an *acyclic* subgraph extracted around seed hits.
Inside a node the computation is striped SIMD Smith–Waterman; at node
entry the H and E columns are seeded with the element-wise maximum over
the node's parents' final columns (Figure 4a's red arrows) — exact,
because max distributes over the affine-gap recurrences.

The paper's two key GSSW observations are both modelled here:

* the algorithm alternates dense SIMD regions with indirect graph
  accesses (the parent-merge), and
* unlike linear SSW it keeps *every* node's full DP matrix live and
  performs swizzle writes from packed SIMD buffers into it
  (``store_full_matrix``), the source of its ~3x memory stalls in the
  Figure 10 case study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.scoring import AffineScoring, VG_DEFAULT
from repro.errors import AlignmentError
from repro.graph.model import SequenceGraph
from repro.graph.ops import topological_sort
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass

_NEG_INF = -(10**9)


@dataclass(frozen=True)
class GraphAlignmentResult:
    """Best local alignment of a query into a graph."""

    score: int
    end_node: int
    end_offset: int
    query_end: int
    cells_computed: int


def graph_smith_waterman_scalar(
    query: str,
    graph: SequenceGraph,
    scoring: AffineScoring = VG_DEFAULT,
) -> GraphAlignmentResult:
    """Scalar affine-gap local alignment to a DAG.  Correctness oracle."""
    if not query:
        raise AlignmentError("empty query")
    order = topological_sort(graph)
    m = len(query)
    open_cost = scoring.gap_open + scoring.gap_extend
    extend_cost = scoring.gap_extend

    final_h: dict[int, np.ndarray] = {}
    final_e: dict[int, np.ndarray] = {}
    best = 0
    best_node = best_offset = best_q = 0
    cells = 0
    for node_id in order:
        node = graph.node(node_id)
        parents = graph.predecessors(node_id)
        if parents:
            h_prev = np.maximum.reduce([final_h[p] for p in parents])
            e_prev = np.maximum.reduce([final_e[p] for p in parents])
        else:
            h_prev = np.zeros(m + 1, dtype=np.int64)
            e_prev = np.full(m + 1, _NEG_INF, dtype=np.int64)
        for offset, base in enumerate(node.sequence):
            h_curr = np.zeros(m + 1, dtype=np.int64)
            e_curr = np.full(m + 1, _NEG_INF, dtype=np.int64)
            f = _NEG_INF
            for i in range(1, m + 1):
                e_curr[i] = max(h_prev[i] - open_cost, e_prev[i] - extend_cost)
                f = max(h_curr[i - 1] - open_cost, f - extend_cost)
                diag = h_prev[i - 1] + scoring.substitution(query[i - 1], base)
                h = max(0, diag, e_curr[i], f)
                h_curr[i] = h
                if h > best:
                    best, best_node, best_offset, best_q = h, node_id, offset, i
            h_prev, e_prev = h_curr, e_curr
            cells += m
        final_h[node_id] = h_prev
        final_e[node_id] = e_prev
    return GraphAlignmentResult(
        score=int(best),
        end_node=best_node,
        end_offset=best_offset,
        query_end=best_q,
        cells_computed=cells,
    )


class GSSW:
    """Striped graph Smith–Waterman with a reusable query profile.

    Args:
        query: Query sequence (a read fragment, ~150 bp in the paper).
        scoring: Affine scheme (vg's 1/4/6/1 by default).
        lanes: SIMD lanes per vector word.
        probe: Optional machine probe.
        store_full_matrix: Model GSSW's full-matrix swizzle writes (on by
            default; linear SSW's two-column working set is the off case).
    """

    LANE_BYTES = 2

    def __init__(
        self,
        query: str,
        scoring: AffineScoring = VG_DEFAULT,
        lanes: int = 8,
        probe: MachineProbe = NULL_PROBE,
        store_full_matrix: bool = True,
        address_space: AddressSpace | None = None,
    ) -> None:
        if not query:
            raise AlignmentError("empty query")
        if lanes < 2:
            raise AlignmentError("need at least 2 SIMD lanes")
        self.query = query
        self.scoring = scoring
        self.lanes = lanes
        self.probe = probe
        self.store_full_matrix = store_full_matrix
        self.segment_length = (len(query) + lanes - 1) // lanes
        self._space = address_space or AddressSpace()
        self._word_bytes = lanes * self.LANE_BYTES
        self._profile_base = self._space.alloc(4 * self.segment_length * self._word_bytes)
        self._graph_base = self._space.alloc(1 << 16)
        self._profile = self._build_profile()
        # Per-column striped-row addresses and swizzle scatter offsets are
        # the same for every column; precompute them once for block emission.
        self._profile_row = self._profile_base + self._word_bytes * np.arange(
            self.segment_length, dtype=np.int64
        )
        # Lane l / segment s holds query position l*seg + s, so walking
        # lanes then segments visits query positions 0..len(query)-1.
        self._swizzle_positions = np.arange(len(query), dtype=np.int64)

    def _build_profile(self) -> dict[str, np.ndarray]:
        seg = self.segment_length
        profile: dict[str, np.ndarray] = {}
        for base in "ACGT":
            matrix = np.zeros((seg, self.lanes), dtype=np.int64)
            for lane in range(self.lanes):
                for segment in range(seg):
                    position = lane * seg + segment
                    if position < len(self.query):
                        matrix[segment, lane] = self.scoring.substitution(
                            self.query[position], base
                        )
            profile[base] = matrix
        return profile

    def align(self, graph: SequenceGraph) -> GraphAlignmentResult:
        """Local-align the query to an acyclic *graph*."""
        order = topological_sort(graph)
        seg = self.segment_length
        probe = self.probe
        open_cost = self.scoring.gap_open + self.scoring.gap_extend
        extend_cost = self.scoring.gap_extend

        final_h: dict[int, np.ndarray] = {}
        final_e: dict[int, np.ndarray] = {}
        matrix_base: dict[int, int] = {}
        best = 0
        best_node = best_offset = best_q = 0
        cells = 0
        improved_flags: list[bool] = []
        lazyf_branches: list[bool] = []
        lazyf_alu = [0]

        for node_id in order:
            node = graph.node(node_id)
            parents = graph.predecessors(node_id)
            # Node initialization: indirect graph accesses to each parent's
            # stored final column (the non-SIMD phase the paper describes).
            if parents:
                probe.load(self._graph_base + node_id * 64, 16)  # adjacency
                h_cols = []
                e_cols = []
                for parent in parents:
                    probe.touch_region(matrix_base[parent], seg * self._word_bytes)
                    h_cols.append(final_h[parent])
                    e_cols.append(final_e[parent])
                h_prev = np.maximum.reduce(h_cols)
                e_prev = np.maximum.reduce(e_cols)
                probe.alu(OpClass.VECTOR_ALU, 2 * len(parents) * seg)
            else:
                h_prev = np.zeros((seg, self.lanes), dtype=np.int64)
                e_prev = np.full((seg, self.lanes), _NEG_INF, dtype=np.int64)
            base_address = self._space.alloc(len(node) * seg * self._word_bytes)
            matrix_base[node_id] = base_address

            h_store = h_prev
            e = e_prev
            sequence_base = self._space.alloc(len(node))
            probe.load_block(
                sequence_base + np.arange(len(node), dtype=np.int64), 1
            )
            row_stride = len(node) * self.LANE_BYTES
            swizzle_rows = base_address + self._swizzle_positions * row_stride
            for offset, base in enumerate(node.sequence):
                h_store, e = self._column(
                    h_store, e, self._profile.get(base, self._profile["A"]),
                    open_cost, extend_cost,
                    first=(offset == 0 and not parents),
                    lazyf_branches=lazyf_branches,
                    lazyf_alu=lazyf_alu,
                )
                cells += len(self.query)
                if self.store_full_matrix:
                    # Scatter the packed column into the row-major node
                    # matrix: consecutive stores stride by the node length —
                    # the poor-locality writeback VTune blames for GSSW's
                    # memory stalls.
                    probe.store_block(
                        swizzle_rows + offset * self.LANE_BYTES, self.LANE_BYTES
                    )
                column_best = int(h_store.max())
                improved = column_best > best
                improved_flags.append(improved)
                if improved:
                    best = column_best
                    best_node = node_id
                    best_offset = offset
                    segment, lane = np.unravel_index(
                        int(h_store.argmax()), h_store.shape
                    )
                    best_q = int(lane) * seg + int(segment) + 1
            final_h[node_id] = h_store
            final_e[node_id] = e
        probe.branch_trace(11, lazyf_branches)
        probe.alu_bulk(OpClass.VECTOR_ALU, lazyf_alu[0])
        probe.branch_trace(10, improved_flags)
        return GraphAlignmentResult(
            score=int(best),
            end_node=best_node,
            end_offset=best_offset,
            query_end=best_q,
            cells_computed=cells,
        )

    def _column(
        self,
        h_prev: np.ndarray,
        e_prev: np.ndarray,
        profile: np.ndarray,
        open_cost: int,
        extend_cost: int,
        first: bool,
        lazyf_branches: list[bool],
        lazyf_alu: list[int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """One striped SW column given the previous column (striped layout).

        Lazy-F's data-dependent exit branches and vector-op counts are
        accumulated into the caller's lists and flushed as one block per
        :meth:`align` call.
        """
        seg = self.segment_length
        probe = self.probe
        h_store = np.zeros((seg, self.lanes), dtype=np.int64)
        e = np.empty((seg, self.lanes), dtype=np.int64)

        h = np.empty(self.lanes, dtype=np.int64)
        h[0] = 0
        h[1:] = h_prev[seg - 1, : self.lanes - 1]
        f = np.full(self.lanes, _NEG_INF, dtype=np.int64)

        for segment in range(seg):
            h = h + profile[segment]
            np.maximum(h, e_prev_col(e_prev, segment, open_cost, extend_cost, h_prev), out=h)
            np.maximum(h, f, out=h)
            np.maximum(h, 0, out=h)
            h_store[segment] = h
            e[segment] = np.maximum(h_prev[segment] - open_cost, e_prev[segment] - extend_cost)
            f = np.maximum(h - open_cost, f - extend_cost)
            h = h_prev[segment].copy()
        probe.load_block(self._profile_row, self._word_bytes)
        # 1 lane shift + 10 dependent vector ops per segment.
        probe.alu(OpClass.VECTOR_ALU, 10 * seg, dependent=True)
        probe.alu(OpClass.VECTOR_ALU, 1)

        done = False
        for _ in range(self.lanes):
            f = np.concatenate(([np.int64(_NEG_INF)], f[:-1]))
            lazyf_alu[0] += 1
            for segment in range(seg):
                np.maximum(h_store[segment], f, out=h_store[segment])
                threshold = h_store[segment] - open_cost
                f = f - extend_cost
                lazyf_alu[0] += 4
                continuing = bool((f > threshold).any())
                lazyf_branches.append(continuing)
                if not continuing:
                    done = True
                    break
            if done:
                break
        return h_store, e


def e_prev_col(
    e_prev: np.ndarray,
    segment: int,
    open_cost: int,
    extend_cost: int,
    h_prev: np.ndarray,
) -> np.ndarray:
    """Current-column E for *segment*: gap opened or extended from the left."""
    return np.maximum(h_prev[segment] - open_cost, e_prev[segment] - extend_cost)


def gssw_align(
    query: str,
    graph: SequenceGraph,
    scoring: AffineScoring = VG_DEFAULT,
    lanes: int = 8,
    probe: MachineProbe = NULL_PROBE,
) -> GraphAlignmentResult:
    """One-shot GSSW alignment (profile built per call)."""
    return GSSW(query, scoring, lanes=lanes, probe=probe).align(graph)
