"""GSSW: graph SIMD Smith–Waterman (Zhao et al., used by vg map).

Aligns a short query to an *acyclic* subgraph extracted around seed hits.
Inside a node the computation is striped SIMD Smith–Waterman; at node
entry the H and E columns are seeded with the element-wise maximum over
the node's parents' final columns (Figure 4a's red arrows) — exact,
because max distributes over the affine-gap recurrences.

The paper's two key GSSW observations are both modelled here:

* the algorithm alternates dense SIMD regions with indirect graph
  accesses (the parent-merge), and
* unlike linear SSW it keeps *every* node's full DP matrix live and
  performs swizzle writes from packed SIMD buffers into it
  (``store_full_matrix``), the source of its ~3x memory stalls in the
  Figure 10 case study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.scoring import AffineScoring, VG_DEFAULT
from repro.backends import (
    SCALAR,
    VECTORIZED,
    check_backend,
    report_backend_fallback,
)
from repro.errors import AlignmentError
from repro.graph.model import SequenceGraph
from repro.graph.ops import topological_sort
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass

_NEG_INF = -(10**9)


@dataclass(frozen=True)
class GraphAlignmentResult:
    """Best local alignment of a query into a graph."""

    score: int
    end_node: int
    end_offset: int
    query_end: int
    cells_computed: int


def graph_smith_waterman_scalar(
    query: str,
    graph: SequenceGraph,
    scoring: AffineScoring = VG_DEFAULT,
) -> GraphAlignmentResult:
    """Scalar affine-gap local alignment to a DAG.  Correctness oracle."""
    if not query:
        raise AlignmentError("empty query")
    order = topological_sort(graph)
    m = len(query)
    open_cost = scoring.gap_open + scoring.gap_extend
    extend_cost = scoring.gap_extend

    final_h: dict[int, np.ndarray] = {}
    final_e: dict[int, np.ndarray] = {}
    best = 0
    best_node = best_offset = best_q = 0
    cells = 0
    for node_id in order:
        node = graph.node(node_id)
        parents = graph.predecessors(node_id)
        if parents:
            h_prev = np.maximum.reduce([final_h[p] for p in parents])
            e_prev = np.maximum.reduce([final_e[p] for p in parents])
        else:
            h_prev = np.zeros(m + 1, dtype=np.int64)
            e_prev = np.full(m + 1, _NEG_INF, dtype=np.int64)
        for offset, base in enumerate(node.sequence):
            h_curr = np.zeros(m + 1, dtype=np.int64)
            e_curr = np.full(m + 1, _NEG_INF, dtype=np.int64)
            f = _NEG_INF
            for i in range(1, m + 1):
                e_curr[i] = max(h_prev[i] - open_cost, e_prev[i] - extend_cost)
                f = max(h_curr[i - 1] - open_cost, f - extend_cost)
                diag = h_prev[i - 1] + scoring.substitution(query[i - 1], base)
                h = max(0, diag, e_curr[i], f)
                h_curr[i] = h
                if h > best:
                    best, best_node, best_offset, best_q = h, node_id, offset, i
            h_prev, e_prev = h_curr, e_curr
            cells += m
        final_h[node_id] = h_prev
        final_e[node_id] = e_prev
    return GraphAlignmentResult(
        score=int(best),
        end_node=best_node,
        end_offset=best_offset,
        query_end=best_q,
        cells_computed=cells,
    )


class GSSW:
    """Striped graph Smith–Waterman with a reusable query profile.

    Args:
        query: Query sequence (a read fragment, ~150 bp in the paper).
        scoring: Affine scheme (vg's 1/4/6/1 by default).
        lanes: SIMD lanes per vector word.
        probe: Optional machine probe.
        store_full_matrix: Model GSSW's full-matrix swizzle writes (on by
            default; linear SSW's two-column working set is the off case).
    """

    LANE_BYTES = 2

    def __init__(
        self,
        query: str,
        scoring: AffineScoring = VG_DEFAULT,
        lanes: int = 8,
        probe: MachineProbe = NULL_PROBE,
        store_full_matrix: bool = True,
        address_space: AddressSpace | None = None,
        backend: str = VECTORIZED,
    ) -> None:
        if not query:
            raise AlignmentError("empty query")
        if lanes < 2:
            raise AlignmentError("need at least 2 SIMD lanes")
        self.query = query
        self.scoring = scoring
        self.lanes = lanes
        self.probe = probe
        self.store_full_matrix = store_full_matrix
        self.segment_length = (len(query) + lanes - 1) // lanes
        self._space = address_space or AddressSpace()
        self._word_bytes = lanes * self.LANE_BYTES
        self._profile_base = self._space.alloc(4 * self.segment_length * self._word_bytes)
        self._graph_base = self._space.alloc(1 << 16)
        self._profile = self._build_profile()
        # Per-column striped-row addresses and swizzle scatter offsets are
        # the same for every column; precompute them once for block emission.
        self._profile_row = self._profile_base + self._word_bytes * np.arange(
            self.segment_length, dtype=np.int64
        )
        # Lane l / segment s holds query position l*seg + s, so walking
        # lanes then segments visits query positions 0..len(query)-1.
        self._swizzle_positions = np.arange(len(query), dtype=np.int64)
        # The vectorized column needs open >= extend so that the lazy-F
        # recurrence collapses to a max-plus prefix scan; an incompatible
        # scheme downgrades to the scalar reference and says so on the
        # kernel.backend_fallback counter.
        check_backend(backend, (SCALAR, VECTORIZED), "GSSW", AlignmentError)
        self.backend = backend
        open_cost = scoring.gap_open + scoring.gap_extend
        self.vectorize = (backend == VECTORIZED
                          and open_cost >= scoring.gap_extend)
        if backend == VECTORIZED and not self.vectorize:
            self.backend = SCALAR
            report_backend_fallback("gssw", requested=VECTORIZED,
                                    actual=SCALAR,
                                    reason="scoring-incompatible")
        self._scan_steps = np.arange(self.segment_length + 1, dtype=np.int64)[:, None]

    def _build_profile(self) -> dict[str, np.ndarray]:
        seg = self.segment_length
        profile: dict[str, np.ndarray] = {}
        for base in "ACGT":
            matrix = np.zeros((seg, self.lanes), dtype=np.int64)
            for lane in range(self.lanes):
                for segment in range(seg):
                    position = lane * seg + segment
                    if position < len(self.query):
                        matrix[segment, lane] = self.scoring.substitution(
                            self.query[position], base
                        )
            profile[base] = matrix
        return profile

    def align(self, graph: SequenceGraph) -> GraphAlignmentResult:
        """Local-align the query to an acyclic *graph*.

        The batched path computes every column with a max-plus prefix
        scan and accumulates probe events per :meth:`align` call so the
        trace machine sees a few large blocks instead of thousands of
        tiny ones.  Addresses, op totals, branch streams and results are
        identical to the scalar reference; only the block interleaving
        differs (covered by the 1.6.0 result-store version bump).
        """
        if self.vectorize:
            return self._align_batched(graph)
        return self._align_reference(graph)

    def _align_batched(self, graph: SequenceGraph) -> GraphAlignmentResult:
        order = topological_sort(graph)
        seg = self.segment_length
        probe = self.probe
        open_cost = self.scoring.gap_open + self.scoring.gap_extend
        extend_cost = self.scoring.gap_extend
        word_bytes = self._word_bytes
        region = seg * word_bytes
        touch_full = region // 64
        touch_tail = region - touch_full * 64
        touch_lines = 64 * np.arange(touch_full, dtype=np.int64)

        final_h: dict[int, np.ndarray] = {}
        final_e: dict[int, np.ndarray] = {}
        matrix_base: dict[int, int] = {}
        best = 0
        best_node = best_offset = best_q = 0
        cells = 0
        columns = 0
        merge_alu = 0
        improved_flags: list[bool] = []
        lazyf_branches: list[bool] = []
        lazyf_alu = [0]
        adj_addrs: list[int] = []
        touch_line_blocks: list[np.ndarray] = []
        touch_tail_addrs: list[int] = []
        seq_blocks: list[np.ndarray] = []
        store_blocks: list[np.ndarray] = []

        for node_id in order:
            node = graph.node(node_id)
            parents = graph.predecessors(node_id)
            if parents:
                adj_addrs.append(self._graph_base + node_id * 64)
                h_cols = []
                e_cols = []
                for parent in parents:
                    base = matrix_base[parent]
                    if touch_full:
                        touch_line_blocks.append(base + touch_lines)
                    if touch_tail > 0:
                        touch_tail_addrs.append(base + touch_full * 64)
                    h_cols.append(final_h[parent])
                    e_cols.append(final_e[parent])
                h_prev = np.maximum.reduce(h_cols)
                e_prev = np.maximum.reduce(e_cols)
                merge_alu += 2 * len(parents) * seg
            else:
                h_prev = np.zeros((seg, self.lanes), dtype=np.int64)
                e_prev = np.full((seg, self.lanes), _NEG_INF, dtype=np.int64)
            base_address = self._space.alloc(len(node) * seg * self._word_bytes)
            matrix_base[node_id] = base_address

            h_store = h_prev
            e = e_prev
            sequence_base = self._space.alloc(len(node))
            seq_blocks.append(sequence_base + np.arange(len(node), dtype=np.int64))
            row_stride = len(node) * self.LANE_BYTES
            swizzle_rows = base_address + self._swizzle_positions * row_stride
            if self.store_full_matrix and len(node):
                offsets = self.LANE_BYTES * np.arange(len(node), dtype=np.int64)
                store_blocks.append(
                    np.add.outer(offsets, swizzle_rows).ravel()
                )
            for offset, base in enumerate(node.sequence):
                h_store, e = self._column_vec(
                    h_store, e, self._profile.get(base, self._profile["A"]),
                    open_cost, extend_cost,
                    lazyf_branches=lazyf_branches,
                    lazyf_alu=lazyf_alu,
                )
                cells += len(self.query)
                columns += 1
                column_best = int(h_store.max())
                improved = column_best > best
                improved_flags.append(improved)
                if improved:
                    best = column_best
                    best_node = node_id
                    best_offset = offset
                    segment, lane = np.unravel_index(
                        int(h_store.argmax()), h_store.shape
                    )
                    best_q = int(lane) * seg + int(segment) + 1
            final_h[node_id] = h_store
            final_e[node_id] = e

        if adj_addrs:
            probe.load_block(np.asarray(adj_addrs, dtype=np.int64), 16)
        if touch_line_blocks:
            probe.load_block(np.concatenate(touch_line_blocks), 64)
        if touch_tail_addrs:
            probe.load_block(np.asarray(touch_tail_addrs, dtype=np.int64), touch_tail)
        if seq_blocks:
            probe.load_block(np.concatenate(seq_blocks), 1)
        if columns:
            probe.load_block(np.tile(self._profile_row, columns), word_bytes)
        if self.store_full_matrix and store_blocks:
            probe.store_block(np.concatenate(store_blocks), self.LANE_BYTES)
        probe.alu_bulk(
            OpClass.VECTOR_ALU,
            merge_alu + (10 * seg + 1) * columns + lazyf_alu[0],
            dependent_count=10 * seg * columns,
        )
        probe.branch_trace(11, lazyf_branches)
        probe.branch_trace(10, improved_flags)
        return GraphAlignmentResult(
            score=int(best),
            end_node=best_node,
            end_offset=best_offset,
            query_end=best_q,
            cells_computed=cells,
        )

    def _column_vec(
        self,
        h_prev: np.ndarray,
        e_prev: np.ndarray,
        profile: np.ndarray,
        open_cost: int,
        extend_cost: int,
        lazyf_branches: list[bool],
        lazyf_alu: list[int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Striped SW column as whole-matrix ops plus a max-plus F scan.

        With ``open >= extend`` the in-column F recurrence
        ``f[s+1] = max(h[s] - open, f[s] - extend)`` is equivalent to
        ``f[s+1] = max(c[s] - open, f[s] - extend)`` where ``c`` is the
        F-independent part of the cell, so substituting
        ``g[s] = f[s] + s*extend`` turns it into a running maximum —
        ``np.maximum.accumulate`` — over exact int64 arithmetic.  The
        results are bit-identical to the scalar segment loop.
        """
        seg = self.segment_length
        e = np.maximum(h_prev - open_cost, e_prev - extend_cost)
        h_in = np.empty_like(h_prev)
        h_in[0, 0] = 0
        h_in[0, 1:] = h_prev[seg - 1, : self.lanes - 1]
        if seg > 1:
            h_in[1:] = h_prev[:-1]
        c = np.maximum(np.maximum(h_in + profile, e), 0)
        g = np.empty((seg + 1, self.lanes), dtype=np.int64)
        g[0] = _NEG_INF
        np.add(c, extend_cost * self._scan_steps[1:] - open_cost, out=g[1:])
        np.maximum.accumulate(g, axis=0, out=g)
        f_all = g - extend_cost * self._scan_steps
        h_store = np.maximum(c, f_all[:seg])
        f = f_all[seg]

        done = False
        for _ in range(self.lanes):
            f = np.concatenate(([np.int64(_NEG_INF)], f[:-1]))
            lazyf_alu[0] += 1
            for segment in range(seg):
                np.maximum(h_store[segment], f, out=h_store[segment])
                threshold = h_store[segment] - open_cost
                f = f - extend_cost
                lazyf_alu[0] += 4
                continuing = bool((f > threshold).any())
                lazyf_branches.append(continuing)
                if not continuing:
                    done = True
                    break
            if done:
                break
        return h_store, e

    def _align_reference(self, graph: SequenceGraph) -> GraphAlignmentResult:
        """Scalar-loop reference with per-column probe emission.

        Kept verbatim as the differential-test oracle for the batched
        path: identical results, op totals and branch streams.
        """
        order = topological_sort(graph)
        seg = self.segment_length
        probe = self.probe
        open_cost = self.scoring.gap_open + self.scoring.gap_extend
        extend_cost = self.scoring.gap_extend

        final_h: dict[int, np.ndarray] = {}
        final_e: dict[int, np.ndarray] = {}
        matrix_base: dict[int, int] = {}
        best = 0
        best_node = best_offset = best_q = 0
        cells = 0
        improved_flags: list[bool] = []
        lazyf_branches: list[bool] = []
        lazyf_alu = [0]

        for node_id in order:
            node = graph.node(node_id)
            parents = graph.predecessors(node_id)
            # Node initialization: indirect graph accesses to each parent's
            # stored final column (the non-SIMD phase the paper describes).
            if parents:
                probe.load(self._graph_base + node_id * 64, 16)  # adjacency
                h_cols = []
                e_cols = []
                for parent in parents:
                    probe.touch_region(matrix_base[parent], seg * self._word_bytes)
                    h_cols.append(final_h[parent])
                    e_cols.append(final_e[parent])
                h_prev = np.maximum.reduce(h_cols)
                e_prev = np.maximum.reduce(e_cols)
                probe.alu(OpClass.VECTOR_ALU, 2 * len(parents) * seg)
            else:
                h_prev = np.zeros((seg, self.lanes), dtype=np.int64)
                e_prev = np.full((seg, self.lanes), _NEG_INF, dtype=np.int64)
            base_address = self._space.alloc(len(node) * seg * self._word_bytes)
            matrix_base[node_id] = base_address

            h_store = h_prev
            e = e_prev
            sequence_base = self._space.alloc(len(node))
            probe.load_block(
                sequence_base + np.arange(len(node), dtype=np.int64), 1
            )
            row_stride = len(node) * self.LANE_BYTES
            swizzle_rows = base_address + self._swizzle_positions * row_stride
            for offset, base in enumerate(node.sequence):
                h_store, e = self._column(
                    h_store, e, self._profile.get(base, self._profile["A"]),
                    open_cost, extend_cost,
                    first=(offset == 0 and not parents),
                    lazyf_branches=lazyf_branches,
                    lazyf_alu=lazyf_alu,
                )
                cells += len(self.query)
                if self.store_full_matrix:
                    # Scatter the packed column into the row-major node
                    # matrix: consecutive stores stride by the node length —
                    # the poor-locality writeback VTune blames for GSSW's
                    # memory stalls.
                    probe.store_block(
                        swizzle_rows + offset * self.LANE_BYTES, self.LANE_BYTES
                    )
                column_best = int(h_store.max())
                improved = column_best > best
                improved_flags.append(improved)
                if improved:
                    best = column_best
                    best_node = node_id
                    best_offset = offset
                    segment, lane = np.unravel_index(
                        int(h_store.argmax()), h_store.shape
                    )
                    best_q = int(lane) * seg + int(segment) + 1
            final_h[node_id] = h_store
            final_e[node_id] = e
        probe.branch_trace(11, lazyf_branches)
        probe.alu_bulk(OpClass.VECTOR_ALU, lazyf_alu[0])
        probe.branch_trace(10, improved_flags)
        return GraphAlignmentResult(
            score=int(best),
            end_node=best_node,
            end_offset=best_offset,
            query_end=best_q,
            cells_computed=cells,
        )

    def _column(
        self,
        h_prev: np.ndarray,
        e_prev: np.ndarray,
        profile: np.ndarray,
        open_cost: int,
        extend_cost: int,
        first: bool,
        lazyf_branches: list[bool],
        lazyf_alu: list[int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """One striped SW column given the previous column (striped layout).

        Lazy-F's data-dependent exit branches and vector-op counts are
        accumulated into the caller's lists and flushed as one block per
        :meth:`align` call.
        """
        seg = self.segment_length
        probe = self.probe
        h_store = np.zeros((seg, self.lanes), dtype=np.int64)
        e = np.empty((seg, self.lanes), dtype=np.int64)

        h = np.empty(self.lanes, dtype=np.int64)
        h[0] = 0
        h[1:] = h_prev[seg - 1, : self.lanes - 1]
        f = np.full(self.lanes, _NEG_INF, dtype=np.int64)

        for segment in range(seg):
            h = h + profile[segment]
            np.maximum(h, e_prev_col(e_prev, segment, open_cost, extend_cost, h_prev), out=h)
            np.maximum(h, f, out=h)
            np.maximum(h, 0, out=h)
            h_store[segment] = h
            e[segment] = np.maximum(h_prev[segment] - open_cost, e_prev[segment] - extend_cost)
            f = np.maximum(h - open_cost, f - extend_cost)
            h = h_prev[segment].copy()
        probe.load_block(self._profile_row, self._word_bytes)
        # 1 lane shift + 10 dependent vector ops per segment.
        probe.alu(OpClass.VECTOR_ALU, 10 * seg, dependent=True)
        probe.alu(OpClass.VECTOR_ALU, 1)

        done = False
        for _ in range(self.lanes):
            f = np.concatenate(([np.int64(_NEG_INF)], f[:-1]))
            lazyf_alu[0] += 1
            for segment in range(seg):
                np.maximum(h_store[segment], f, out=h_store[segment])
                threshold = h_store[segment] - open_cost
                f = f - extend_cost
                lazyf_alu[0] += 4
                continuing = bool((f > threshold).any())
                lazyf_branches.append(continuing)
                if not continuing:
                    done = True
                    break
            if done:
                break
        return h_store, e


def e_prev_col(
    e_prev: np.ndarray,
    segment: int,
    open_cost: int,
    extend_cost: int,
    h_prev: np.ndarray,
) -> np.ndarray:
    """Current-column E for *segment*: gap opened or extended from the left."""
    return np.maximum(h_prev[segment] - open_cost, e_prev[segment] - extend_cost)


def gssw_align(
    query: str,
    graph: SequenceGraph,
    scoring: AffineScoring = VG_DEFAULT,
    lanes: int = 8,
    probe: MachineProbe = NULL_PROBE,
) -> GraphAlignmentResult:
    """One-shot GSSW alignment (profile built per call)."""
    return GSSW(query, scoring, lanes=lanes, probe=probe).align(graph)
