"""Smith–Waterman local alignment: scalar reference and striped SIMD model.

The scalar version is the Gotoh affine-gap DP used as a correctness
oracle.  :class:`StripedSmithWaterman` models Farrar's striped algorithm
(the SSW library) the way the paper's SSW/GSSW kernels use it: the query
is laid out in stripes across SIMD lanes, a lazy-F pass fixes the
speculated-away vertical dependencies, and every vector operation /
memory access is reported to an optional :class:`MachineProbe` so the
characterization studies see SSW's true operation mix.

Gap convention: a gap of length L costs ``gap_open + L * gap_extend``.
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import AffineScoring, AlignmentResult, VG_DEFAULT
from repro.backends import (
    SCALAR,
    VECTORIZED,
    check_backend,
    report_backend_fallback,
)
from repro.errors import AlignmentError
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass

_NEG_INF = -(10**9)

#: Shared space for target windows so successive alignments stream over
#: fresh reference regions (as the real tool does over the genome).
_TARGET_SPACE = AddressSpace(base=1 << 33)


def smith_waterman(
    query: str,
    target: str,
    scoring: AffineScoring = VG_DEFAULT,
) -> AlignmentResult:
    """Scalar affine-gap local alignment (Gotoh).  Correctness oracle.

    Returns the best local score with end coordinates on both sequences.
    """
    if not query or not target:
        raise AlignmentError("smith_waterman requires non-empty sequences")
    m, n = len(query), len(target)
    open_cost = scoring.gap_open + scoring.gap_extend
    extend_cost = scoring.gap_extend

    h_prev = np.zeros(m + 1, dtype=np.int64)
    e_prev = np.full(m + 1, _NEG_INF, dtype=np.int64)
    best = 0
    best_q = best_t = 0
    for j in range(1, n + 1):
        h_curr = np.zeros(m + 1, dtype=np.int64)
        e_curr = np.full(m + 1, _NEG_INF, dtype=np.int64)
        f = _NEG_INF
        for i in range(1, m + 1):
            e_curr[i] = max(h_prev[i] - open_cost, e_prev[i] - extend_cost)
            f = max(h_curr[i - 1] - open_cost, f - extend_cost)
            diag = h_prev[i - 1] + scoring.substitution(query[i - 1], target[j - 1])
            h = max(0, diag, e_curr[i], f)
            h_curr[i] = h
            if h > best:
                best, best_q, best_t = h, i, j
        h_prev, e_prev = h_curr, e_curr
    return AlignmentResult(
        score=int(best), query_end=best_q, target_end=best_t, cells_computed=m * n
    )


class StripedSmithWaterman:
    """Farrar's striped SIMD Smith–Waterman (the SSW library's algorithm).

    Args:
        query: The (short) query sequence; profiled once, reused per target.
        scoring: Affine scheme.
        lanes: SIMD lanes per vector word (8 for 16-bit epi16 SSE2, the
            SSW library default).
        probe: Optional machine probe receiving vector/memory/branch events.
    """

    LANE_BYTES = 2  # 16-bit scores, as in the SSW library's epi16 kernel

    def __init__(
        self,
        query: str,
        scoring: AffineScoring = VG_DEFAULT,
        lanes: int = 8,
        probe: MachineProbe = NULL_PROBE,
        address_space: AddressSpace | None = None,
        backend: str = VECTORIZED,
    ) -> None:
        if not query:
            raise AlignmentError("empty query")
        if lanes < 2:
            raise AlignmentError("need at least 2 SIMD lanes")
        self.query = query
        self.scoring = scoring
        self.lanes = lanes
        self.probe = probe
        self.segment_length = (len(query) + lanes - 1) // lanes
        space = address_space or AddressSpace()
        word_bytes = lanes * self.LANE_BYTES
        self._profile_base = space.alloc(4 * self.segment_length * word_bytes)
        self._h_base = space.alloc(2 * self.segment_length * word_bytes)
        self._e_base = space.alloc(self.segment_length * word_bytes)
        self._word_bytes = word_bytes
        self._profile = self._build_profile()
        # The batched column needs open >= extend so that the in-column F
        # recurrence collapses to a max-plus prefix scan (same condition
        # as GSSW's vectorized column); an incompatible scheme downgrades
        # to the scalar reference and says so on kernel.backend_fallback.
        check_backend(backend, (SCALAR, VECTORIZED), "StripedSmithWaterman",
                      AlignmentError)
        self.backend = backend
        open_cost = scoring.gap_open + scoring.gap_extend
        self.vectorize = (backend == VECTORIZED
                          and open_cost >= scoring.gap_extend)
        if backend == VECTORIZED and not self.vectorize:
            self.backend = SCALAR
            report_backend_fallback("ssw", requested=VECTORIZED,
                                    actual=SCALAR,
                                    reason="scoring-incompatible")
        self._scan_steps = np.arange(self.segment_length + 1, dtype=np.int64)[:, None]

    def _build_profile(self) -> dict[str, np.ndarray]:
        """Striped query profile: profile[base][segment][lane]."""
        seg = self.segment_length
        profile: dict[str, np.ndarray] = {}
        for base_index, base in enumerate("ACGT"):
            matrix = np.full((seg, self.lanes), _NEG_INF, dtype=np.int64)
            for lane in range(self.lanes):
                for segment in range(seg):
                    position = lane * seg + segment
                    if position < len(self.query):
                        matrix[segment, lane] = self.scoring.substitution(
                            self.query[position], base
                        )
                    else:
                        matrix[segment, lane] = 0
            profile[base] = matrix
            self.probe.touch_region(
                self._profile_base + base_index * seg * self._word_bytes,
                seg * self._word_bytes,
            )
        return profile

    def align(self, target: str) -> AlignmentResult:
        """Local-align the profiled query against *target*."""
        if not target:
            raise AlignmentError("empty target")
        best, best_q, best_t = self._run(target)
        return AlignmentResult(
            score=int(best),
            query_end=best_q,
            target_end=best_t,
            cells_computed=len(self.query) * len(target),
        )

    # ------------------------------------------------------------------

    def _run(self, target: str) -> tuple[int, int, int]:
        seg = self.segment_length
        probe = self.probe
        word_bytes = self._word_bytes
        open_cost = self.scoring.gap_open + self.scoring.gap_extend
        extend_cost = self.scoring.gap_extend

        h_store = np.zeros((seg, self.lanes), dtype=np.int64)
        h_load = np.zeros((seg, self.lanes), dtype=np.int64)
        e = np.full((seg, self.lanes), _NEG_INF, dtype=np.int64)
        best = 0
        best_q = 0
        best_t = 0
        # Each target window is a fresh reference region: streaming reads.
        target_base = _TARGET_SPACE.alloc(len(target))
        probe.load_block(target_base + np.arange(len(target), dtype=np.int64), 1)

        # The per-column memory walk is the same every column: striped
        # rows of the profile, H and E arrays.  Emit whole-row address
        # arrays once per column instead of per-segment events.
        segment_offsets = word_bytes * np.arange(seg, dtype=np.int64)
        profile_row = self._profile_base + segment_offsets
        h_store_row = self._h_base + segment_offsets
        e_row = self._e_base + segment_offsets
        h_load_row = self._h_base + seg * word_bytes + segment_offsets
        improved_flags: list[bool] = []
        lazyf_stores: list[int] = []
        lazyf_branches: list[bool] = []
        lazyf_alu = 0

        for j, base in enumerate(target):
            if base not in self._profile:
                base = "A"  # Ns score as mismatches against the profile of A
            profile = self._profile[base]
            # vH enters shifted by one lane from the last segment's H.
            h = np.empty(self.lanes, dtype=np.int64)
            h[0] = 0
            h[1:] = h_store[seg - 1, : self.lanes - 1]
            h_store, h_load = h_load, h_store
            f = np.full(self.lanes, _NEG_INF, dtype=np.int64)

            if self.vectorize:
                # The whole column as matrix ops.  ``c`` is the
                # F-independent part of each cell; with open >= extend
                # the in-column recurrence ``f[s+1] = max(h[s] - open,
                # f[s] - extend)`` equals ``max(c[s] - open, f[s] -
                # extend)``, and substituting ``g[s] = f[s] + s*extend``
                # turns it into a running maximum over exact int64s —
                # bit-identical to the segment loop.  E is updated from
                # the pre-lazy-F H, exactly as the segment loop does.
                h_in = np.empty((seg, self.lanes), dtype=np.int64)
                h_in[0] = h
                if seg > 1:
                    h_in[1:] = h_load[: seg - 1]
                c = np.maximum(np.maximum(h_in + profile, e), 0)
                g = np.empty((seg + 1, self.lanes), dtype=np.int64)
                g[0] = _NEG_INF
                np.add(c, extend_cost * self._scan_steps[1:] - open_cost,
                       out=g[1:])
                np.maximum.accumulate(g, axis=0, out=g)
                f_all = g - extend_cost * self._scan_steps
                np.maximum(c, f_all[:seg], out=h_store)
                np.maximum(h_store - open_cost, e - extend_cost, out=e)
                f = f_all[seg]
            else:
                for segment in range(seg):
                    h = h + profile[segment]
                    np.maximum(h, e[segment], out=h)
                    np.maximum(h, f, out=h)
                    np.maximum(h, 0, out=h)
                    h_store[segment] = h
                    e[segment] = np.maximum(
                        h - open_cost, e[segment] - extend_cost
                    )
                    f = np.maximum(h - open_cost, f - extend_cost)
                    h = h_load[segment].copy()
            probe.load_block(profile_row, word_bytes)
            probe.store_block(h_store_row, word_bytes)
            probe.load_block(e_row, word_bytes)
            probe.store_block(e_row, word_bytes)
            probe.load_block(h_load_row, word_bytes)
            # 1 lane shift + 10 dependent vector ops per segment (4 for
            # the H recurrence, 6 for the E/F updates).
            probe.alu(OpClass.VECTOR_ALU, 10 * seg, dependent=True)
            probe.alu(OpClass.VECTOR_ALU, 1)

            # Lazy-F: propagate F across stripes until no lane can improve
            # (the vertical dependency Farrar speculates away).  The
            # stores and data-dependent exit branches are accumulated and
            # flushed as blocks after the column sweep.
            done = False
            for _ in range(self.lanes):
                f = np.concatenate(([np.int64(_NEG_INF)], f[:-1]))
                lazyf_alu += 1
                for segment in range(seg):
                    np.maximum(h_store[segment], f, out=h_store[segment])
                    lazyf_stores.append(self._h_base + segment * word_bytes)
                    threshold = h_store[segment] - open_cost
                    f = f - extend_cost
                    lazyf_alu += 4
                    continuing = bool((f > threshold).any())
                    lazyf_branches.append(continuing)
                    if not continuing:
                        done = True
                        break
                if done:
                    break

            column_best = int(h_store.max())
            improved = column_best > best
            improved_flags.append(improved)
            if improved:
                best = column_best
                best_t = j + 1
                segment, lane = np.unravel_index(int(h_store.argmax()), h_store.shape)
                best_q = int(lane) * seg + int(segment) + 1

        probe.store_block(lazyf_stores, word_bytes)
        probe.branch_trace(2, lazyf_branches)
        probe.alu_bulk(OpClass.VECTOR_ALU, lazyf_alu)
        probe.branch_trace(1, improved_flags)
        return best, best_q, best_t


def striped_smith_waterman(
    query: str,
    target: str,
    scoring: AffineScoring = VG_DEFAULT,
    lanes: int = 8,
    probe: MachineProbe = NULL_PROBE,
) -> AlignmentResult:
    """One-shot striped SW (profile built per call)."""
    return StripedSmithWaterman(query, scoring, lanes=lanes, probe=probe).align(target)
