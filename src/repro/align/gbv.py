"""GBV: Graph Myers's bitvector alignment (Rautiainen et al., GraphAligner).

Aligns a (long) query to a possibly *cyclic* graph under unit edit costs.
Each one-base graph position is a DP *row*; a row depends on its parent
rows (the merge across incoming edges, Figure 4b's red arrows) and, on
cyclic graphs, a row's recomputation can improve its own ancestors, so
rows are pushed to a priority queue whenever a parent changes and
reprocessed until scores stabilize — the source of GBV's unpredictable
branching behaviour (Section 5.2).

Rows are stored as 64-cell blocks updated with Myers-style arithmetic;
we keep scores explicit (numpy rows) rather than bit-encoded, preserving
the data flow, the dependence structure, and the queue dynamics, while
the probe reports the kernel's true 64-bit scalar operation mix.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError
from repro.graph.model import SequenceGraph
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass

_BIG = 1 << 30


@dataclass(frozen=True)
class GBVResult:
    """Outcome of a GBV alignment.

    Attributes:
        distance: Best edit distance of the full query against any walk.
        end_node: Node the best walk ends in.
        end_offset: Base offset within ``end_node``.
        rows_computed: Total row evaluations (including recomputations).
        recomputations: Row evaluations beyond the first per row — the
            cyclic-graph stabilization work.
        queue_pushes: Priority-queue pushes.
    """

    distance: int
    end_node: int
    end_offset: int
    rows_computed: int
    recomputations: int
    queue_pushes: int


class _EventAccumulator:
    """Per-align buffers of probe events, flushed as blocks.

    GBV's probe traffic never steers its control flow, so deferring the
    per-word branches, per-parent loads and ALU credits to one block
    flush per :meth:`GBV.align` call is observationally equivalent for
    any probe while removing the per-event call overhead.
    """

    __slots__ = (
        "parent_loads", "row_stores", "merge_branches", "changed_branches",
        "queue_branches", "threshold_branches", "alu_total", "alu_dependent",
    )

    def __init__(self) -> None:
        self.parent_loads: list[int] = []
        self.row_stores: list[int] = []
        self.merge_branches: list[bool] = []
        self.changed_branches: list[bool] = []
        self.queue_branches: list[bool] = []
        self.threshold_branches: tuple[list[bool], list[bool]] = ([], [])
        self.alu_total = 0
        self.alu_dependent = 0


class GBV:
    """Graph Myers aligner for one query, reusable across graphs."""

    def __init__(self, query: str, probe: MachineProbe = NULL_PROBE) -> None:
        if not query:
            raise AlignmentError("empty query")
        self.query = query
        self.probe = probe
        m = len(query)
        self._indices = np.arange(m + 1, dtype=np.int64)
        # delta[c][j] = 1 if query[j-1] != c (j >= 1)
        self._delta: dict[str, np.ndarray] = {}
        for base in "ACGTN":
            delta = np.ones(m + 1, dtype=np.int64)
            for j, q in enumerate(self.query, start=1):
                if q == base:
                    delta[j] = 0
            self._delta[base] = delta
        self._virtual = self._indices.copy()  # D[start][j] = j
        self._words = (m + 63) // 64

    def align(self, graph: SequenceGraph) -> GBVResult:
        """Align the query to *graph* (cycles allowed)."""
        rows, row_parents, row_children, row_base = _row_graph(graph)
        m = len(self.query)
        probe = self.probe
        space = AddressSpace()
        row_bytes = self._words * 16  # Pv + Mv words
        row_address = [space.alloc(row_bytes) for _ in rows]

        values: list[np.ndarray | None] = [None] * len(rows)
        computed = [0] * len(rows)
        rows_computed = 0
        queue_pushes = 0
        # Seed the queue with every row in (node, offset) order.
        heap: list[int] = list(range(len(rows)))
        heapq.heapify(heap)
        in_queue = [True] * len(rows)
        queue_pushes += len(rows)

        # The probe never steers control flow, so data-dependent outcomes
        # and addresses accumulate per site and flush as blocks after the
        # stabilization loop instead of one call per word/parent/child.
        acc = _EventAccumulator()

        while heap:
            row = heapq.heappop(heap)
            in_queue[row] = False
            delta = self._delta.get(row_base[row], self._delta["N"])
            new_value = self._compute_row(
                [values[p] for p in row_parents[row]], delta, row_address,
                row_parents[row], acc,
            )
            rows_computed += 1
            computed[row] += 1
            old_value = values[row]
            if old_value is not None:
                improved = new_value < old_value
                changed = bool(improved.any())
                acc.alu_total += self._words
                # Per-word merge comparisons: the data-dependent branches
                # of the graph merge step (Section 5.2).
                words = max(1, len(improved) // 64)
                merged = improved[: words * 64]
                acc.merge_branches.extend(
                    (np.add.reduceat(merged, np.arange(words) * 64) > 0).tolist()
                )
            else:
                changed = True
            acc.changed_branches.append(changed)
            if not changed:
                continue
            if old_value is not None:
                np.minimum(new_value, old_value, out=new_value)
            values[row] = new_value
            acc.row_stores.append(row_address[row])
            for child in row_children[row]:
                acc.queue_branches.append(not in_queue[child])
                if not in_queue[child]:
                    heapq.heappush(heap, child)
                    in_queue[child] = True
                    queue_pushes += 1

        probe.load_block(acc.parent_loads, self._words * 16)
        probe.store_block(acc.row_stores, row_bytes)
        probe.alu_bulk(OpClass.SCALAR_ALU, acc.alu_total, acc.alu_dependent)
        probe.branch_trace(32, acc.merge_branches)
        probe.branch_trace(30, acc.changed_branches)
        probe.branch_trace(31, acc.queue_branches)
        probe.branch_trace(36, acc.threshold_branches[0])
        probe.branch_trace(38, acc.threshold_branches[1])

        best = _BIG
        best_row = 0
        for row, value in enumerate(values):
            if value is not None and int(value[m]) < best:
                best = int(value[m])
                best_row = row
        self._traceback(values, row_parents, row_address, best_row)
        node_id, offset = rows[best_row]
        return GBVResult(
            distance=best,
            end_node=node_id,
            end_offset=offset,
            rows_computed=rows_computed,
            recomputations=rows_computed - len(rows),
            queue_pushes=queue_pushes,
        )

    def _traceback(
        self,
        values: list[np.ndarray | None],
        row_parents: list[list[int]],
        row_address: list[int],
        end_row: int,
    ) -> None:
        """Walk the optimal path backwards (GraphAligner keeps traceback
        inside the kernel; its direction choices are the data-dependent
        branches the paper's bad-speculation numbers blame)."""
        probe = self.probe
        row = end_row
        j = len(self.query)
        steps = 0
        limit = len(self.query) + len(values) + 8
        while j > 0 and steps < limit:
            steps += 1
            value = values[row]
            if value is None:
                break
            current = int(value[j])
            probe.load(row_address[row] + (j // 64) * 16, 16)
            # Insertion (stay on this row)?
            take_left = int(value[j - 1]) + 1 == current
            probe.branch(site=33, taken=take_left)
            if take_left:
                j -= 1
                continue
            moved = False
            for parent in row_parents[row]:
                parent_value = values[parent]
                if parent_value is None:
                    continue
                probe.load(row_address[parent] + (j // 64) * 16, 16)
                diagonal = int(parent_value[j - 1]) + (0 if current == int(parent_value[j - 1]) else 1)
                take_diag = diagonal >= current and int(parent_value[j - 1]) <= current
                probe.branch(site=34, taken=take_diag)
                if take_diag:
                    row = parent
                    j -= 1
                    moved = True
                    break
                take_up = int(parent_value[j]) + 1 == current
                probe.branch(site=35, taken=take_up)
                if take_up:
                    row = parent
                    moved = True
                    break
            if not moved:
                # Alignment start reached (virtual row).
                break

    def _compute_row(
        self,
        parent_values: list[np.ndarray | None],
        delta: np.ndarray,
        row_address: list[int],
        parent_ids: list[int],
        acc: "_EventAccumulator",
    ) -> np.ndarray:
        """Evaluate one row from its parents (plus the virtual start row)."""
        candidates = [self._candidate(self._virtual, delta)]
        for parent_id, parent in zip(parent_ids, parent_values):
            if parent is None:
                continue
            acc.parent_loads.append(row_address[parent_id])
            candidates.append(self._candidate(parent, delta))
            # The Myers word update is a serial chain of bit operations
            # (carry-propagating adds); about half its depth overlaps.
            acc.alu_total += 14 * self._words
            acc.alu_dependent += 7 * self._words
        row = candidates[0]
        # bitvector merges
        acc.alu_total += 6 * self._words * (len(candidates) - 1)
        for other in candidates[1:]:
            np.minimum(row, other, out=row)
        # Horizontal pass: row[j] = min_k<=j row[k] + (j - k).
        np.minimum.accumulate(row - self._indices, out=row)
        row += self._indices
        acc.alu_total += 4 * self._words
        acc.alu_dependent += 4 * self._words
        row[0] = 0
        # Per-word score/band threshold checks: GraphAligner decides per
        # word whether the block is still under the score band, and the
        # outcome follows the data (the misprediction source of Fig. 6).
        m = len(row) - 1
        for word in range(0, self._words, 2):
            cell = int(row[min(word * 64 + 63, m)])
            acc.threshold_branches[(word % 4) // 2].append((cell & 3) == 0)
        return row

    def _candidate(self, parent: np.ndarray, delta: np.ndarray) -> np.ndarray:
        """min(parent + 1, diag(parent) + delta) without the horizontal term."""
        shifted = np.empty_like(parent)
        shifted[0] = _BIG
        shifted[1:] = parent[:-1]
        return np.minimum(parent + 1, shifted + delta)


def _row_graph(
    graph: SequenceGraph,
) -> tuple[list[tuple[int, int]], list[list[int]], list[list[int]], list[str]]:
    """Expand a graph into one-base rows with parent/child lists."""
    rows: list[tuple[int, int]] = []
    row_index: dict[tuple[int, int], int] = {}
    row_base: list[str] = []
    for node_id in sorted(graph.node_ids()):
        sequence = graph.node(node_id).sequence
        for offset, base in enumerate(sequence):
            row_index[(node_id, offset)] = len(rows)
            rows.append((node_id, offset))
            row_base.append(base)
    parents: list[list[int]] = [[] for _ in rows]
    children: list[list[int]] = [[] for _ in rows]
    for node_id in sorted(graph.node_ids()):
        length = len(graph.node(node_id))
        for offset in range(1, length):
            parent = row_index[(node_id, offset - 1)]
            child = row_index[(node_id, offset)]
            parents[child].append(parent)
            children[parent].append(child)
        last = row_index[(node_id, length - 1)]
        for successor in graph.successors(node_id):
            first = row_index[(successor, 0)]
            parents[first].append(last)
            children[last].append(first)
    return rows, parents, children, row_base


def gbv_align(
    query: str, graph: SequenceGraph, probe: MachineProbe = NULL_PROBE
) -> GBVResult:
    """One-shot GBV alignment."""
    return GBV(query, probe=probe).align(graph)


def graph_edit_distance_scalar(query: str, graph: SequenceGraph) -> int:
    """Scalar label-correcting oracle for GBV (cell-by-cell Python loops)."""
    rows, parents, children, row_base = _row_graph(graph)
    m = len(query)
    values: list[list[int] | None] = [None] * len(rows)
    virtual = list(range(m + 1))
    pending = list(range(len(rows)))
    in_queue = [True] * len(rows)
    heapq.heapify(pending)
    while pending:
        row = heapq.heappop(pending)
        in_queue[row] = False
        base = row_base[row]
        sources = [virtual] + [values[p] for p in parents[row] if values[p] is not None]
        new = [0] * (m + 1)
        for j in range(1, m + 1):
            best = _BIG
            for source in sources:
                best = min(best, source[j] + 1, source[j - 1] + (query[j - 1] != base))
            best = min(best, new[j - 1] + 1)
            new[j] = best
        old = values[row]
        if old is None or any(n < o for n, o in zip(new, old)):
            if old is not None:
                new = [min(n, o) for n, o in zip(new, old)]
            values[row] = new
            for child in children[row]:
                if not in_queue[child]:
                    heapq.heappush(pending, child)
                    in_queue[child] = True
    return min(value[m] for value in values if value is not None)
