"""GBV: Graph Myers's bitvector alignment (Rautiainen et al., GraphAligner).

Aligns a (long) query to a possibly *cyclic* graph under unit edit costs.
Each one-base graph position is a DP *row*; a row depends on its parent
rows (the merge across incoming edges, Figure 4b's red arrows) and, on
cyclic graphs, a row's recomputation can improve its own ancestors, so
rows are pushed to a priority queue whenever a parent changes and
reprocessed until scores stabilize — the source of GBV's unpredictable
branching behaviour (Section 5.2).

Rows are stored as 64-cell blocks updated with Myers-style arithmetic;
we keep scores explicit (numpy rows) rather than bit-encoded, preserving
the data flow, the dependence structure, and the queue dynamics, while
the probe reports the kernel's true 64-bit scalar operation mix.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError
from repro.graph.model import SequenceGraph
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass

_BIG = 1 << 30


@dataclass(frozen=True)
class GBVResult:
    """Outcome of a GBV alignment.

    Attributes:
        distance: Best edit distance of the full query against any walk.
        end_node: Node the best walk ends in.
        end_offset: Base offset within ``end_node``.
        rows_computed: Total row evaluations (including recomputations).
        recomputations: Row evaluations beyond the first per row — the
            cyclic-graph stabilization work.
        queue_pushes: Priority-queue pushes.
    """

    distance: int
    end_node: int
    end_offset: int
    rows_computed: int
    recomputations: int
    queue_pushes: int


class GBV:
    """Graph Myers aligner for one query, reusable across graphs."""

    def __init__(self, query: str, probe: MachineProbe = NULL_PROBE) -> None:
        if not query:
            raise AlignmentError("empty query")
        self.query = query
        self.probe = probe
        m = len(query)
        self._indices = np.arange(m + 1, dtype=np.int64)
        # delta[c][j] = 1 if query[j-1] != c (j >= 1)
        self._delta: dict[str, np.ndarray] = {}
        for base in "ACGTN":
            delta = np.ones(m + 1, dtype=np.int64)
            for j, q in enumerate(self.query, start=1):
                if q == base:
                    delta[j] = 0
            self._delta[base] = delta
        self._virtual = self._indices.copy()  # D[start][j] = j
        self._words = (m + 63) // 64

    def align(self, graph: SequenceGraph) -> GBVResult:
        """Align the query to *graph* (cycles allowed)."""
        rows, row_parents, row_children, row_base = _row_graph(graph)
        m = len(self.query)
        probe = self.probe
        space = AddressSpace()
        row_bytes = self._words * 16  # Pv + Mv words
        row_address = [space.alloc(row_bytes) for _ in rows]

        values: list[np.ndarray | None] = [None] * len(rows)
        computed = [0] * len(rows)
        rows_computed = 0
        queue_pushes = 0
        # Seed the queue with every row in (node, offset) order.
        heap: list[int] = list(range(len(rows)))
        heapq.heapify(heap)
        in_queue = [True] * len(rows)
        queue_pushes += len(rows)

        while heap:
            row = heapq.heappop(heap)
            in_queue[row] = False
            delta = self._delta.get(row_base[row], self._delta["N"])
            new_value = self._compute_row(
                [values[p] for p in row_parents[row]], delta, row_address, row_parents[row]
            )
            rows_computed += 1
            computed[row] += 1
            old_value = values[row]
            if old_value is not None:
                improved = new_value < old_value
                changed = bool(improved.any())
                probe.alu(OpClass.SCALAR_ALU, self._words)
                # Per-word merge comparisons: the data-dependent branches
                # of the graph merge step (Section 5.2).
                words = max(1, len(improved) // 64)
                for word in range(words):
                    segment = improved[word * 64 : (word + 1) * 64]
                    probe.branch(site=32, taken=bool(segment.any()))
            else:
                changed = True
            probe.branch(site=30, taken=changed)
            if not changed:
                continue
            if old_value is not None:
                np.minimum(new_value, old_value, out=new_value)
            values[row] = new_value
            probe.store(row_address[row], row_bytes)
            for child in row_children[row]:
                probe.branch(site=31, taken=not in_queue[child])
                if not in_queue[child]:
                    heapq.heappush(heap, child)
                    in_queue[child] = True
                    queue_pushes += 1

        best = _BIG
        best_row = 0
        for row, value in enumerate(values):
            if value is not None and int(value[m]) < best:
                best = int(value[m])
                best_row = row
        self._traceback(values, row_parents, row_address, best_row)
        node_id, offset = rows[best_row]
        return GBVResult(
            distance=best,
            end_node=node_id,
            end_offset=offset,
            rows_computed=rows_computed,
            recomputations=rows_computed - len(rows),
            queue_pushes=queue_pushes,
        )

    def _traceback(
        self,
        values: list[np.ndarray | None],
        row_parents: list[list[int]],
        row_address: list[int],
        end_row: int,
    ) -> None:
        """Walk the optimal path backwards (GraphAligner keeps traceback
        inside the kernel; its direction choices are the data-dependent
        branches the paper's bad-speculation numbers blame)."""
        probe = self.probe
        row = end_row
        j = len(self.query)
        steps = 0
        limit = len(self.query) + len(values) + 8
        while j > 0 and steps < limit:
            steps += 1
            value = values[row]
            if value is None:
                break
            current = int(value[j])
            probe.load(row_address[row] + (j // 64) * 16, 16)
            # Insertion (stay on this row)?
            take_left = int(value[j - 1]) + 1 == current
            probe.branch(site=33, taken=take_left)
            if take_left:
                j -= 1
                continue
            moved = False
            for parent in row_parents[row]:
                parent_value = values[parent]
                if parent_value is None:
                    continue
                probe.load(row_address[parent] + (j // 64) * 16, 16)
                diagonal = int(parent_value[j - 1]) + (0 if current == int(parent_value[j - 1]) else 1)
                take_diag = diagonal >= current and int(parent_value[j - 1]) <= current
                probe.branch(site=34, taken=take_diag)
                if take_diag:
                    row = parent
                    j -= 1
                    moved = True
                    break
                take_up = int(parent_value[j]) + 1 == current
                probe.branch(site=35, taken=take_up)
                if take_up:
                    row = parent
                    moved = True
                    break
            if not moved:
                # Alignment start reached (virtual row).
                break

    def _compute_row(
        self,
        parent_values: list[np.ndarray | None],
        delta: np.ndarray,
        row_address: list[int],
        parent_ids: list[int],
    ) -> np.ndarray:
        """Evaluate one row from its parents (plus the virtual start row)."""
        probe = self.probe
        candidates = [self._candidate(self._virtual, delta)]
        for parent_id, parent in zip(parent_ids, parent_values):
            if parent is None:
                continue
            probe.load(row_address[parent_id], self._words * 16)
            candidates.append(self._candidate(parent, delta))
            # The Myers word update is a serial chain of bit operations
            # (carry-propagating adds); about half its depth overlaps.
            probe.alu(OpClass.SCALAR_ALU, 7 * self._words, dependent=True)
            probe.alu(OpClass.SCALAR_ALU, 7 * self._words)
        row = candidates[0]
        for other in candidates[1:]:
            np.minimum(row, other, out=row)
            probe.alu(OpClass.SCALAR_ALU, 6 * self._words)  # bitvector merge
        # Horizontal pass: row[j] = min_k<=j row[k] + (j - k).
        np.minimum.accumulate(row - self._indices, out=row)
        row += self._indices
        probe.alu(OpClass.SCALAR_ALU, 4 * self._words, dependent=True)
        row[0] = 0
        # Per-word score/band threshold checks: GraphAligner decides per
        # word whether the block is still under the score band, and the
        # outcome follows the data (the misprediction source of Fig. 6).
        m = len(row) - 1
        for word in range(0, self._words, 2):
            cell = int(row[min(word * 64 + 63, m)])
            probe.branch(site=36 + (word % 4), taken=(cell & 3) == 0)
        return row

    def _candidate(self, parent: np.ndarray, delta: np.ndarray) -> np.ndarray:
        """min(parent + 1, diag(parent) + delta) without the horizontal term."""
        shifted = np.empty_like(parent)
        shifted[0] = _BIG
        shifted[1:] = parent[:-1]
        return np.minimum(parent + 1, shifted + delta)


def _row_graph(
    graph: SequenceGraph,
) -> tuple[list[tuple[int, int]], list[list[int]], list[list[int]], list[str]]:
    """Expand a graph into one-base rows with parent/child lists."""
    rows: list[tuple[int, int]] = []
    row_index: dict[tuple[int, int], int] = {}
    row_base: list[str] = []
    for node_id in sorted(graph.node_ids()):
        sequence = graph.node(node_id).sequence
        for offset, base in enumerate(sequence):
            row_index[(node_id, offset)] = len(rows)
            rows.append((node_id, offset))
            row_base.append(base)
    parents: list[list[int]] = [[] for _ in rows]
    children: list[list[int]] = [[] for _ in rows]
    for node_id in sorted(graph.node_ids()):
        length = len(graph.node(node_id))
        for offset in range(1, length):
            parent = row_index[(node_id, offset - 1)]
            child = row_index[(node_id, offset)]
            parents[child].append(parent)
            children[parent].append(child)
        last = row_index[(node_id, length - 1)]
        for successor in graph.successors(node_id):
            first = row_index[(successor, 0)]
            parents[first].append(last)
            children[last].append(first)
    return rows, parents, children, row_base


def gbv_align(
    query: str, graph: SequenceGraph, probe: MachineProbe = NULL_PROBE
) -> GBVResult:
    """One-shot GBV alignment."""
    return GBV(query, probe=probe).align(graph)


def graph_edit_distance_scalar(query: str, graph: SequenceGraph) -> int:
    """Scalar label-correcting oracle for GBV (cell-by-cell Python loops)."""
    rows, parents, children, row_base = _row_graph(graph)
    m = len(query)
    values: list[list[int] | None] = [None] * len(rows)
    virtual = list(range(m + 1))
    pending = list(range(len(rows)))
    in_queue = [True] * len(rows)
    heapq.heapify(pending)
    while pending:
        row = heapq.heappop(pending)
        in_queue[row] = False
        base = row_base[row]
        sources = [virtual] + [values[p] for p in parents[row] if values[p] is not None]
        new = [0] * (m + 1)
        for j in range(1, m + 1):
            best = _BIG
            for source in sources:
                best = min(best, source[j] + 1, source[j - 1] + (query[j - 1] != base))
            best = min(best, new[j - 1] + 1)
            new[j] = best
        old = values[row]
        if old is None or any(n < o for n, o in zip(new, old)):
            if old is not None:
                new = [min(n, o) for n, o in zip(new, old)]
            values[row] = new
            for child in children[row]:
                if not in_queue[child]:
                    heapq.heappush(pending, child)
                    in_queue[child] = True
    return min(value[m] for value in values if value is not None)
