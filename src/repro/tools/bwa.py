"""BWA-MEM2-style Seq2Seq baseline mapper.

Table 1's reference point: mapping short reads to a *linear* reference
is much cheaper than any Seq2Graph tool because seeding hits a flat
index, "clustering" is coordinate arithmetic (no shortest-path queries),
and alignment is banded striped Smith–Waterman over a plain substring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.scoring import VG_DEFAULT, AffineScoring
from repro.align.smith_waterman import StripedSmithWaterman
from repro.index.minimizer import SequenceMinimizerIndex
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read, SequenceRecord
from repro.tools.base import MappingResult, ToolRun, check_reads
from repro.uarch.events import NULL_PROBE, MachineProbe


@dataclass
class BwaConfig:
    """Tunables for the Seq2Seq baseline."""

    k: int = 15
    w: int = 10
    min_cluster_size: int = 2
    max_candidates: int = 2
    flank: int = 24
    scoring: AffineScoring = VG_DEFAULT


class BwaMem:
    """Seq2Seq mapper: minimizer seeds, coordinate clustering, SSW."""

    def __init__(
        self,
        reference: SequenceRecord,
        config: BwaConfig | None = None,
        probe: MachineProbe = NULL_PROBE,
    ) -> None:
        self.reference = reference
        self.config = config or BwaConfig()
        self.probe = probe
        self.index = SequenceMinimizerIndex(k=self.config.k, w=self.config.w)
        self.index.add(reference.name, reference.sequence)

    def map_read(self, read: Read, run: ToolRun) -> MappingResult:
        config = self.config
        with run.timer.stage("seed"):
            seeds = self.index.seeds_for(read.sequence)
            opposite = sum(1 for *_x, opp in seeds if opp)
            sequence = read.sequence
            if seeds and opposite * 2 > len(seeds):
                sequence = reverse_complement(read.sequence)
                seeds = self.index.seeds_for(sequence)
            run.bump("seeds", len(seeds))
        if not seeds:
            return MappingResult(read.name, mapped=False, score=0.0, details="no seeds")

        with run.timer.stage("cluster"):
            # Coordinate-difference clustering: the cheap Seq2Seq trick
            # graphs take away.  Bucket by (ref_pos - read_pos) diagonal.
            diagonals: dict[int, int] = {}
            for read_pos, _name, ref_pos, opposite in seeds:
                if opposite:
                    continue
                diagonal = (ref_pos - read_pos) // 16
                diagonals[diagonal] = diagonals.get(diagonal, 0) + 1
            candidates = sorted(
                (count, diagonal) for diagonal, count in diagonals.items()
                if count >= config.min_cluster_size
            )[-config.max_candidates :]
        if not candidates:
            return MappingResult(read.name, mapped=False, score=0.0, details="no clusters")

        with run.timer.stage("align"):
            aligner = StripedSmithWaterman(sequence, config.scoring, probe=self.probe)
            best: MappingResult | None = None
            for _count, diagonal in candidates:
                start = max(0, diagonal * 16 - config.flank)
                end = min(
                    len(self.reference.sequence),
                    diagonal * 16 + len(read) + config.flank,
                )
                window = self.reference.sequence[start:end]
                if not window:
                    continue
                result = aligner.align(window)
                run.bump("dp_cells", result.cells_computed)
                candidate = MappingResult(
                    read.name,
                    mapped=result.score > len(read) // 2,
                    score=float(result.score),
                    node_offset=start + result.target_end,
                )
                if best is None or candidate.score > best.score:
                    best = candidate
        if best is None:
            return MappingResult(read.name, mapped=False, score=0.0, details="empty windows")
        return best

    def map_reads(self, reads: list[Read]) -> ToolRun:
        run = ToolRun(tool="bwa_mem")
        for read in check_reads(reads):
            run.results.append(self.map_read(read, run))
        return run
