"""Giraffe: the vg giraffe haplotype-aware short-read mapper model.

Giraffe's signature stage (Figure 2) is *filtering*: clustered seed hits
are extended through the graph gaplessly, but only along walks that are
subpaths of some indexed haplotype — enforced with GBWT ``find``/
``extend`` operations (Section 3, GBWT kernel).  Extensions tolerate a
few mismatches (gapless), so most short reads resolve without any DP and
only the leftovers reach GSSW — which is why giraffe's runtime
concentrates in seeding + filtering rather than alignment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.chain import ClusterStats, cluster_seeds
from repro.align.gssw import GSSW
from repro.align.scoring import VG_DEFAULT, AffineScoring
from repro.graph.model import SequenceGraph
from repro.graph.ops import local_subgraph
from repro.index.gbwt import ENDMARKER, GBWT
from repro.index.minimizer import GraphMinimizerIndex, Seed
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read
from repro.tools.base import MappingResult, ToolRun, check_reads
from repro.uarch.events import NULL_PROBE, MachineProbe


@dataclass
class GiraffeConfig:
    """Tunables (giraffe-like defaults scaled to synthetic data)."""

    k: int = 15
    w: int = 10
    min_cluster_size: int = 2
    max_extensions_per_read: int = 16
    max_mismatches: int = 4
    full_length_bonus: int = 10
    scoring: AffineScoring = VG_DEFAULT


@dataclass(frozen=True)
class HaplotypeExtension:
    """Result of extending one seed along haplotypes."""

    matched_bases: int
    mismatches: int
    full_length: bool
    node_id: int
    node_offset: int
    gbwt_extends: int


class Giraffe:
    """vg giraffe model: minimizers + clustering + GBWT filter + GSSW."""

    def __init__(
        self,
        graph: SequenceGraph,
        config: GiraffeConfig | None = None,
        probe: MachineProbe = NULL_PROBE,
    ) -> None:
        self.graph = graph
        self.config = config or GiraffeConfig()
        self.probe = probe
        self.index = GraphMinimizerIndex(graph, k=self.config.k, w=self.config.w)
        self.gbwt = GBWT.from_graph(graph)

    # ------------------------------------------------------------------

    def extend_seed(self, sequence: str, seed: Seed) -> HaplotypeExtension:
        """Gapless haplotype-constrained extension of one seed hit.

        Forward from the seed the walk is GBWT-constrained (Figure 4c):
        at each node end only haplotype-consistent successors whose first
        base matches (or costs a mismatch) continue the extension.
        Backward the walk follows graph predecessors.  Extension stops
        when the mismatch budget is exhausted.
        """
        budget = self.config.max_mismatches
        mismatches = 0
        extends = 0

        # Forward pass (GBWT-constrained).
        node_id = seed.node_id
        node = self.graph.node(node_id)
        offset = seed.node_offset
        position = seed.read_position
        state = self.gbwt.full_state(node_id)
        end_node, end_offset = node_id, offset
        while position < len(sequence) and mismatches <= budget:
            if offset >= len(node):
                successors = self.gbwt.successors(state)
                extends += 1
                best_next = None
                for candidate, _count in sorted(successors.items()):
                    if candidate == ENDMARKER:
                        continue
                    if self.graph.node(candidate).sequence[0] == sequence[position]:
                        best_next = candidate
                        break
                if best_next is None:
                    # No matching haplotype continuation: spend a mismatch
                    # on the most frequent one, or stop at a dead end.
                    real = [c for c in successors if c != ENDMARKER]
                    if not real or mismatches >= budget:
                        break
                    best_next = max(real, key=lambda c: successors[c])
                state = self.gbwt.extend(state, best_next)
                extends += 1
                node_id = best_next
                node = self.graph.node(node_id)
                offset = 0
                continue
            if node.sequence[offset] != sequence[position]:
                mismatches += 1
                if mismatches > budget:
                    break
            end_node, end_offset = node_id, offset
            offset += 1
            position += 1
        forward_covered = position - seed.read_position

        # Backward pass (graph-walk; giraffe uses the reverse GBWT here).
        node_id = seed.node_id
        node = self.graph.node(node_id)
        offset = seed.node_offset - 1
        position = seed.read_position - 1
        while position >= 0 and mismatches <= budget:
            if offset < 0:
                predecessors = self.graph.predecessors(node_id)
                extends += 1
                chosen = None
                for candidate in predecessors:
                    if self.graph.node(candidate).sequence[-1] == sequence[position]:
                        chosen = candidate
                        break
                if chosen is None:
                    if not predecessors or mismatches >= budget:
                        break
                    chosen = predecessors[0]
                node_id = chosen
                node = self.graph.node(node_id)
                offset = len(node) - 1
                continue
            if node.sequence[offset] != sequence[position]:
                mismatches += 1
                if mismatches > budget:
                    break
            offset -= 1
            position -= 1
        backward_covered = seed.read_position - 1 - position

        covered = forward_covered + backward_covered
        return HaplotypeExtension(
            matched_bases=covered - mismatches,
            mismatches=mismatches,
            full_length=covered >= len(sequence),
            node_id=end_node,
            node_offset=end_offset,
            gbwt_extends=extends,
        )

    def map_read(self, read: Read, run: ToolRun) -> MappingResult:
        config = self.config
        with run.timer.stage("seed"):
            seeds, flipped = self.index.oriented_seeds(read.sequence)
            run.bump("seeds", len(seeds))
        if not seeds:
            return MappingResult(read.name, mapped=False, score=0.0, details="no seeds")
        sequence = reverse_complement(read.sequence) if flipped else read.sequence

        with run.timer.stage("cluster"):
            stats = ClusterStats()
            clusters = cluster_seeds(
                self.graph, seeds,
                max_graph_gap=len(read) * 2,
                max_read_gap=len(read),
                min_cluster_size=config.min_cluster_size,
                stats=stats,
            )
            run.bump("distance_queries", stats.distance_queries)
            clusters.sort(key=len, reverse=True)

        best_extension: HaplotypeExtension | None = None
        with run.timer.stage("filter"):
            candidates: list[Seed] = []
            for cluster in clusters[:4]:
                ordered = sorted(cluster.seeds, key=lambda s: s.read_position)
                step = max(1, len(ordered) // 4)
                candidates.extend(ordered[::step])
            for seed in candidates[: config.max_extensions_per_read]:
                extension = self.extend_seed(sequence, seed)
                run.bump("gbwt_extends", extension.gbwt_extends)
                if (
                    best_extension is None
                    or extension.matched_bases > best_extension.matched_bases
                ):
                    best_extension = extension
        if best_extension is not None and best_extension.full_length:
            run.bump("resolved_by_extension")
            return MappingResult(
                read.name,
                mapped=True,
                score=float(best_extension.matched_bases + config.full_length_bonus),
                node_id=best_extension.node_id,
                node_offset=best_extension.node_offset,
                details="gbwt_extension",
            )

        if not clusters:
            return MappingResult(read.name, mapped=False, score=0.0, details="no clusters")
        with run.timer.stage("align"):
            anchor_seed = clusters[0].seeds[len(clusters[0].seeds) // 2]
            subgraph = local_subgraph(
                self.graph, anchor_seed.node_id, radius_bp=len(read) + 64, acyclic=True
            )
            aligner = GSSW(sequence, config.scoring, probe=self.probe)
            result = aligner.align(subgraph)
            run.bump("dp_cells", result.cells_computed)
        return MappingResult(
            read.name,
            mapped=result.score > len(read) // 2,
            score=float(result.score),
            node_id=result.end_node,
            node_offset=result.end_offset,
            details="gssw_fallback",
        )

    def map_reads(self, reads: list[Read]) -> ToolRun:
        run = ToolRun(tool="giraffe")
        for read in check_reads(reads):
            run.results.append(self.map_read(read, run))
        return run
