"""Shared infrastructure for the end-to-end tool models.

Every tool runs the pipeline stages of Figure 1 (seed, cluster/chain,
filter, align) and reports per-stage wall-clock time plus work counters,
which is exactly what the paper's Figure 2 breakdown and Table 1
extrapolation consume.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ReproError
from repro.obs import trace
from repro.sequence.records import Read

#: Canonical stage names, in pipeline order (Figure 1).
STAGES = ("seed", "cluster", "filter", "align")


class StageTimer:
    """Accumulates wall-clock seconds per named stage.

    Each stage is a ``stage/<name>`` span on the span tracer — the
    suite's single timing source — so the per-stage seconds behind the
    Figure 2/3 breakdowns appear in trace exports whenever a real tracer
    is installed, and are measured identically when it is not.
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        span = trace.timed_span(f"stage/{name}")
        try:
            with span:
                yield
        finally:
            self.seconds[name] = self.seconds.get(name, 0.0) + span.duration

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Stage fractions of total runtime (Figure 2's arcs)."""
        total = self.total
        if total <= 0:
            raise ReproError("no stage time recorded")
        return {name: seconds / total for name, seconds in self.seconds.items()}


@dataclass(frozen=True)
class MappingResult:
    """Outcome of mapping one read."""

    read_name: str
    mapped: bool
    score: float
    node_id: int = -1
    node_offset: int = -1
    details: str = ""


@dataclass
class ToolRun:
    """One end-to-end tool execution."""

    tool: str
    results: list[MappingResult] = field(default_factory=list)
    timer: StageTimer = field(default_factory=StageTimer)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def mapped_fraction(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for result in self.results if result.mapped) / len(self.results)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def summary(self) -> dict[str, object]:
        return {
            "tool": self.tool,
            "reads": len(self.results),
            "mapped_fraction": round(self.mapped_fraction, 4),
            "stage_seconds": {k: round(v, 4) for k, v in self.timer.seconds.items()},
            "counters": dict(self.counters),
        }


def check_reads(reads: list[Read]) -> list[Read]:
    if not reads:
        raise ReproError("no reads to map")
    return reads
