"""GraphAligner: the long-read Seq2Graph mapper model.

GraphAligner (Figure 2) spends ~5% of its time on lightweight clustering
and ~90% on alignment: it filters seed hits barely at all and lets the
GBV bit-parallel aligner absorb the work, trading affine-gap accuracy
for edit-distance speed (Section 3).  That profile emerges here because
clustering is a cheap node-proximity grouping while every surviving
cluster runs a full GBV alignment over its local subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.gbv import GBV
from repro.graph.model import SequenceGraph
from repro.graph.ops import local_subgraph
from repro.index.minimizer import GraphMinimizerIndex, Seed
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read
from repro.tools.base import MappingResult, ToolRun, check_reads
from repro.uarch.events import NULL_PROBE, MachineProbe


@dataclass
class GraphAlignerConfig:
    """Tunables (GraphAligner-like defaults scaled to synthetic data)."""

    k: int = 17
    w: int = 20
    max_clusters_aligned: int = 2
    min_cluster_seeds: int = 3
    context_slack: int = 64
    max_error_fraction: float = 0.35


class GraphAligner:
    """GraphAligner model: minimizers, light clustering, GBV alignment."""

    def __init__(
        self,
        graph: SequenceGraph,
        config: GraphAlignerConfig | None = None,
        probe: MachineProbe = NULL_PROBE,
    ) -> None:
        self.graph = graph
        self.config = config or GraphAlignerConfig()
        self.probe = probe
        self.index = GraphMinimizerIndex(graph, k=self.config.k, w=self.config.w)

    def _light_clusters(self, seeds: list[Seed]) -> list[list[Seed]]:
        """Cheap clustering: bucket by node id neighbourhood, no distance
        queries (GraphAligner's 5%-of-runtime clustering)."""
        forward = [seed for seed in seeds if not seed.is_reverse]
        forward.sort(key=lambda seed: (seed.node_id, seed.read_position))
        clusters: list[list[Seed]] = []
        for seed in forward:
            if clusters and abs(clusters[-1][-1].node_id - seed.node_id) <= 64:
                clusters[-1].append(seed)
            else:
                clusters.append([seed])
        clusters = [c for c in clusters if len(c) >= self.config.min_cluster_seeds]
        clusters.sort(key=len, reverse=True)
        return clusters[: self.config.max_clusters_aligned]

    def map_read(self, read: Read, run: ToolRun) -> MappingResult:
        with run.timer.stage("seed"):
            seeds, flipped = self.index.oriented_seeds(read.sequence)
            run.bump("seeds", len(seeds))
        if not seeds:
            return MappingResult(read.name, mapped=False, score=0.0, details="no seeds")
        sequence = reverse_complement(read.sequence) if flipped else read.sequence

        with run.timer.stage("cluster"):
            clusters = self._light_clusters(seeds)
        if not clusters:
            return MappingResult(read.name, mapped=False, score=0.0, details="no clusters")

        with run.timer.stage("align"):
            aligner = GBV(sequence, probe=self.probe)
            best: MappingResult | None = None
            for cluster in clusters:
                anchor = cluster[len(cluster) // 2]
                subgraph = local_subgraph(
                    self.graph, anchor.node_id,
                    radius_bp=len(read) + self.config.context_slack,
                )
                run.bump("subgraph_bases", subgraph.total_sequence_length)
                result = aligner.align(subgraph)
                run.bump("gbv_rows", result.rows_computed)
                run.bump("gbv_recomputations", result.recomputations)
                mapped = result.distance <= self.config.max_error_fraction * len(read)
                candidate = MappingResult(
                    read.name,
                    mapped=mapped,
                    score=float(len(read) - result.distance),
                    node_id=result.end_node,
                    node_offset=result.end_offset,
                )
                if best is None or candidate.score > best.score:
                    best = candidate
        assert best is not None
        return best

    def map_reads(self, reads: list[Read]) -> ToolRun:
        run = ToolRun(tool="graphaligner")
        for read in check_reads(reads):
            run.results.append(self.map_read(read, run))
        return run
