"""Graph-building pipelines: Minigraph–Cactus and PGGB (Figure 3).

Both take a collection of assemblies and produce a pangenome graph in
four timed stages — alignment, graph induction, polishing, visualization
— matching the paper's Figure 3 stage breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data import default_store, scenario_spec
from repro.build.cactus import build_progressive
from repro.build.gfaffix import polish
from repro.build.seqwish import induce_graph
from repro.build.smoothxg import smooth
from repro.build.wfmash import all_to_all
from repro.graph.model import GraphStats, SequenceGraph
from repro.layout.pgsgd import PGSGDParams, pgsgd_layout
from repro.sequence.records import SequenceRecord
from repro.tools.base import StageTimer
from repro.uarch.events import NULL_PROBE, MachineProbe

#: Canonical graph-building stage names, in order (Figure 3).
BUILD_STAGES = ("alignment", "induction", "polish", "visualization")


def pipeline_records(
    scenario: str = "default",
    scale: float = 1.0,
    seed: int = 0,
    limit: int | None = None,
) -> list[SequenceRecord]:
    """Assembly inputs for a pipeline run, declared as a dataset spec.

    Resolves the scenario's corpus through the shared artifact store
    (built once, shared with the kernels) and returns its assemblies —
    the pipelines' analog of a kernel's ``prepare``.  ``limit`` caps the
    assembly count, since both pipelines' alignment stages are
    super-linear in it.
    """
    spec = scenario_spec(scenario, scale=scale, seed=seed)
    records = list(default_store().corpus(spec).assemblies)
    return records[:limit] if limit is not None else records


@dataclass
class PipelineRun:
    """One graph-building pipeline execution."""

    pipeline: str
    graph: SequenceGraph | None = None
    timer: StageTimer = field(default_factory=StageTimer)
    counters: dict[str, int] = field(default_factory=dict)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def summary(self) -> dict[str, object]:
        stats = GraphStats.of(self.graph) if self.graph else None
        return {
            "pipeline": self.pipeline,
            "stage_seconds": {k: round(v, 4) for k, v in self.timer.seconds.items()},
            "graph": stats,
            "counters": dict(self.counters),
        }


def run_minigraph_cactus(
    records: list[SequenceRecord],
    layout_params: PGSGDParams | None = None,
    probe: MachineProbe = NULL_PROBE,
) -> PipelineRun:
    """Minigraph–Cactus: progressive alignment, induction, GFAffix, layout.

    The first record seeds the graph (MC's reference bias).  Alignment
    and induction happen inside :func:`build_progressive`; polishing is
    separated out so its time is visible.
    """
    run = PipelineRun(pipeline="minigraph_cactus")
    with run.timer.stage("alignment"):
        built = build_progressive(records, run_polish=False, probe=probe)
        run.bump("anchors", built.stats.anchors)
        run.bump("gwfa_invocations", built.stats.gwfa_invocations)
    with run.timer.stage("induction"):
        # Progressive induction already threaded the paths; account the
        # variant bookkeeping as induction work.
        graph = built.graph
        run.bump("variants", built.stats.variants)
    with run.timer.stage("polish"):
        graph, polish_stats = polish(graph)
        run.bump("nodes_merged", polish_stats.nodes_merged)
    with run.timer.stage("visualization"):
        layout = pgsgd_layout(graph, layout_params or PGSGDParams(iterations=8,
                                                                  updates_per_iteration=1500))
        run.bump("layout_updates", layout.updates)
    run.graph = graph
    return run


def run_pggb(
    records: list[SequenceRecord],
    layout_params: PGSGDParams | None = None,
    smooth_block_length: int = 600,
    probe: MachineProbe = NULL_PROBE,
) -> PipelineRun:
    """PGGB: wfmash all-to-all, seqwish induction, smoothxg POA, layout."""
    run = PipelineRun(pipeline="pggb")
    with run.timer.stage("alignment"):
        matches, wstats = all_to_all(records, probe=probe)
        run.bump("matches", len(matches))
        run.bump("wfa_cells", wstats.wfa_cells)
    with run.timer.stage("induction"):
        result = induce_graph(records, matches, probe=probe)
        graph = result.graph
        run.bump("closures", result.stats.closures)
        run.bump("tree_queries", result.stats.tree_queries)
    with run.timer.stage("polish"):
        _blocks, smooth_stats = smooth(graph, block_length=smooth_block_length, probe=probe)
        run.bump("poa_cells", smooth_stats.poa_cells)
    with run.timer.stage("visualization"):
        layout = pgsgd_layout(graph, layout_params or PGSGDParams(iterations=8,
                                                                  updates_per_iteration=1500))
        run.bump("layout_updates", layout.updates)
    run.graph = graph
    return run
