"""VgMap: the vg map Seq2Graph short-read mapper model.

Pipeline per Figure 2: minimizer seeding against the graph, graph-
distance clustering, and GSSW alignment of the read against acyclic
subgraphs extracted around the best clusters.  vg map spends significant
time in *every* stage (the paper's "falls between the extremes"), which
emerges here because clustering runs shortest-path queries and alignment
runs full DP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.chain import Cluster, ClusterStats, cluster_seeds
from repro.align.gssw import GSSW
from repro.align.scoring import VG_DEFAULT, AffineScoring
from repro.graph.model import SequenceGraph
from repro.graph.ops import local_subgraph
from repro.index.minimizer import GraphMinimizerIndex
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read
from repro.tools.base import MappingResult, ToolRun, check_reads
from repro.uarch.events import NULL_PROBE, MachineProbe


@dataclass
class VgMapConfig:
    """Tunables (vg-like defaults scaled to synthetic data)."""

    k: int = 15
    w: int = 10
    max_clusters_aligned: int = 2
    min_cluster_size: int = 2
    context_radius: int = 160
    scoring: AffineScoring = VG_DEFAULT


class VgMap:
    """vg map model over a pangenome graph with haplotype paths."""

    def __init__(
        self,
        graph: SequenceGraph,
        config: VgMapConfig | None = None,
        probe: MachineProbe = NULL_PROBE,
    ) -> None:
        self.graph = graph
        self.config = config or VgMapConfig()
        self.probe = probe
        self.index = GraphMinimizerIndex(graph, k=self.config.k, w=self.config.w)

    def map_read(self, read: Read, run: ToolRun) -> MappingResult:
        config = self.config
        with run.timer.stage("seed"):
            seeds, flipped = self.index.oriented_seeds(read.sequence)
            run.bump("seeds", len(seeds))
        if not seeds:
            return MappingResult(read.name, mapped=False, score=0.0, details="no seeds")
        sequence = reverse_complement(read.sequence) if flipped else read.sequence

        with run.timer.stage("cluster"):
            stats = ClusterStats()
            clusters = cluster_seeds(
                self.graph, seeds,
                max_graph_gap=len(read) * 2,
                max_read_gap=len(read),
                min_cluster_size=config.min_cluster_size,
                stats=stats,
            )
            run.bump("distance_queries", stats.distance_queries)
            clusters.sort(key=len, reverse=True)
            clusters = clusters[: config.max_clusters_aligned]
        if not clusters:
            return MappingResult(read.name, mapped=False, score=0.0, details="no clusters")

        with run.timer.stage("align"):
            aligner = GSSW(sequence, config.scoring, probe=self.probe)
            best: MappingResult | None = None
            for cluster in clusters:
                anchor_seed = cluster.seeds[len(cluster.seeds) // 2]
                subgraph = local_subgraph(
                    self.graph, anchor_seed.node_id,
                    radius_bp=len(read) + config.context_radius,
                    acyclic=True,
                )
                run.bump("subgraph_bases", subgraph.total_sequence_length)
                result = aligner.align(subgraph)
                run.bump("dp_cells", result.cells_computed)
                candidate = MappingResult(
                    read.name,
                    mapped=result.score > len(read) // 2,
                    score=float(result.score),
                    node_id=result.end_node,
                    node_offset=result.end_offset,
                )
                if best is None or candidate.score > best.score:
                    best = candidate
        assert best is not None
        return best

    def map_reads(self, reads: list[Read]) -> ToolRun:
        """Map a batch; returns the run with stage times and counters."""
        run = ToolRun(tool="vg_map")
        for read in check_reads(reads):
            run.results.append(self.map_read(read, run))
        return run
