"""End-to-end tool models: mappers and graph-building pipelines."""

from repro.tools.base import (
    STAGES,
    MappingResult,
    StageTimer,
    ToolRun,
)
from repro.tools.bwa import BwaConfig, BwaMem
from repro.tools.giraffe import Giraffe, GiraffeConfig, HaplotypeExtension
from repro.tools.graphaligner import GraphAligner, GraphAlignerConfig
from repro.tools.minigraph import Minigraph, MinigraphConfig
from repro.tools.pipelines import (
    BUILD_STAGES,
    PipelineRun,
    pipeline_records,
    run_minigraph_cactus,
    run_pggb,
)
from repro.tools.vg_map import VgMap, VgMapConfig

__all__ = [
    "STAGES", "MappingResult", "StageTimer", "ToolRun",
    "BwaConfig", "BwaMem",
    "Giraffe", "GiraffeConfig", "HaplotypeExtension",
    "GraphAligner", "GraphAlignerConfig",
    "Minigraph", "MinigraphConfig",
    "BUILD_STAGES", "PipelineRun", "pipeline_records",
    "run_minigraph_cactus", "run_pggb",
    "VgMap", "VgMapConfig",
]
