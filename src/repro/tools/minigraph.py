"""Minigraph: the long-read / assembly Seq2Graph mapper model.

Minigraph (Figure 2) front-loads its work into *chaining*: a minimap2-
style 2D DP over anchors plus GWFA bridging of the gaps between chained
anchors (the GWFA kernel — 47% of chaining time for long reads, 75% for
chromosome assemblies, per Section 2.1).  Base-level alignment of the
remaining divergent stretches is comparatively light for reads and is
skipped for assemblies (minigraph's default).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.chain import anchors_from_seeds, chain_anchors
from repro.align.gwfa import gwfa_align
from repro.align.wfa import wfa_edit_distance
from repro.errors import AlignmentError
from repro.graph.model import SequenceGraph
from repro.index.minimizer import GraphMinimizerIndex
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read
from repro.tools.base import MappingResult, ToolRun, check_reads
from repro.uarch.events import NULL_PROBE, MachineProbe


@dataclass
class MinigraphConfig:
    """Tunables; ``mode`` is 'lr' (long reads) or 'cr' (assemblies)."""

    mode: str = "lr"
    k: int = 17
    w: int = 20
    max_gwfa_gap: int = 600
    base_level: bool = True  # run WFA refinement of gaps ('lr' default)

    def __post_init__(self) -> None:
        if self.mode not in ("lr", "cr"):
            raise AlignmentError(f"unknown minigraph mode {self.mode!r}")
        if self.mode == "cr":
            # Assemblies: chaining only, no base-level alignment; larger
            # gaps bridged (whole-chromosome mapping).
            self.base_level = False
            self.max_gwfa_gap = 4000


class Minigraph:
    """Minigraph model: minimizers, 2D chaining with GWFA, WFA base step."""

    def __init__(
        self,
        graph: SequenceGraph,
        config: MinigraphConfig | None = None,
        probe: MachineProbe = NULL_PROBE,
    ) -> None:
        self.graph = graph
        self.config = config or MinigraphConfig()
        self.probe = probe
        self.index = GraphMinimizerIndex(graph, k=self.config.k, w=self.config.w)

    def map_read(self, read: Read, run: ToolRun) -> MappingResult:
        config = self.config
        with run.timer.stage("seed"):
            seeds, flipped = self.index.oriented_seeds(read.sequence)
            run.bump("seeds", len(seeds))
        if not seeds:
            return MappingResult(read.name, mapped=False, score=0.0, details="no seeds")
        sequence = reverse_complement(read.sequence) if flipped else read.sequence

        with run.timer.stage("cluster"):  # minigraph's chaining stage
            anchors = anchors_from_seeds(self.graph, seeds, config.k)
            chain = chain_anchors(anchors, max_gap=config.max_gwfa_gap, probe=self.probe)
            run.bump("chain_pairs", chain.pairs_evaluated)
            # GWFA bridging: connect consecutive chain anchors through the
            # graph (this is the extracted GWFA kernel's in-tool context).
            gwfa_states = 0
            bridged = 0
            for left, right in zip(chain.anchors, chain.anchors[1:]):
                read_gap = right.read_position - (left.read_position + left.length)
                if read_gap <= 0 or read_gap > config.max_gwfa_gap:
                    continue
                gap_sequence = sequence[
                    left.read_position + left.length : right.read_position
                ]
                if not gap_sequence:
                    continue
                try:
                    result = gwfa_align(
                        gap_sequence, self.graph, left.node_id,
                        probe=self.probe, max_score=2 * len(gap_sequence) + 32,
                    )
                    gwfa_states += result.stats.states_processed
                    bridged += 1
                except AlignmentError:
                    continue
            run.bump("gwfa_states", gwfa_states)
            run.bump("gwfa_bridges", bridged)
        if not chain.anchors:
            return MappingResult(read.name, mapped=False, score=0.0, details="no chain")

        score = chain.score
        if config.base_level:
            with run.timer.stage("align"):
                # WFA refinement of the divergent gaps against the chained
                # target interval (coordinate-linearized).
                refined = 0
                for left, right in zip(chain.anchors, chain.anchors[1:]):
                    read_gap = sequence[
                        left.read_position + left.length : right.read_position
                    ]
                    target_gap_length = right.target_position - (
                        left.target_position + left.length
                    )
                    if not read_gap or target_gap_length <= 0:
                        continue
                    target_gap = self._walk_sequence(
                        left.node_id, left.length, target_gap_length
                    )
                    if not target_gap:
                        continue
                    result = wfa_edit_distance(read_gap, target_gap, probe=self.probe)
                    refined += 1
                    score -= result.distance
                run.bump("wfa_refinements", refined)

        coverage = sum(anchor.length for anchor in chain.anchors)
        return MappingResult(
            read.name,
            mapped=coverage >= min(len(read) // 4, 200),
            score=float(score),
            node_id=chain.anchors[0].node_id,
            details=f"chain_of_{len(chain.anchors)}",
        )

    def _walk_sequence(self, node_id: int, skip: int, length: int) -> str:
        """Collect ~length graph bases downstream of (node_id, +skip)."""
        pieces: list[str] = []
        collected = 0
        current = node_id
        offset = skip
        while collected < length:
            sequence = self.graph.node(current).sequence
            take = sequence[offset : offset + (length - collected)]
            pieces.append(take)
            collected += len(take)
            if collected >= length:
                break
            successors = self.graph.successors(current)
            if not successors:
                break
            current = successors[0]
            offset = 0
        return "".join(pieces)

    def map_reads(self, reads: list[Read]) -> ToolRun:
        run = ToolRun(tool=f"minigraph-{self.config.mode}")
        for read in check_reads(reads):
            run.results.append(self.map_read(read, run))
        return run
