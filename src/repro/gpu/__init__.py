"""SIMT GPU simulator and the GPU kernels (TSU; PGSGD-GPU lives in
:mod:`repro.layout.pgsgd_gpu` next to its CPU twin)."""

from repro.gpu.simt import (
    A6000,
    TRANSACTION_BYTES,
    WARP_SIZE,
    GPUConfig,
    GPUKernelReport,
    GPUKernelRun,
    Occupancy,
    occupancy_for,
)
from repro.gpu.tsu import (
    TSU_REGISTERS_PER_THREAD,
    TSUBatchResult,
    cpu_wfa_time_model,
    tsu_align_batch,
)

__all__ = [
    "A6000", "TRANSACTION_BYTES", "WARP_SIZE", "GPUConfig", "GPUKernelReport",
    "GPUKernelRun", "Occupancy", "occupancy_for",
    "TSU_REGISTERS_PER_THREAD", "TSUBatchResult", "cpu_wfa_time_model",
    "tsu_align_batch",
]
