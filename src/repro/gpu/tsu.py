"""TSU: Tsunami, the GPU wavefront aligner (Gerometta et al., PACT 2023).

TSU allocates one 32-thread block per alignment.  In the *Next* step each
diagonal maps to one thread; in the *Extend* step TSU speculates that a
diagonal will match far, assigning every thread one cell of the same
diagonal (Figure 4d-right).  When a diagonal barely extends, 31 of the 32
lanes do no useful work — the control divergence that makes TSU lose to
the CPU on long reads (Figure 9).

The simulator runs the *real* edit-distance WFA on each pair (from
:mod:`repro.align.wfa`, with per-diagonal extend lengths recorded) and
replays the trace onto :class:`~repro.gpu.simt.GPUKernelRun`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.wfa import wfa_edit_distance
from repro.errors import SimulationError
from repro.gpu.simt import A6000, WARP_SIZE, GPUConfig, GPUKernelReport, GPUKernelRun

#: Registers per thread in the TSU kernel (sets the occupancy limit
#: together with the 32-thread block size).
TSU_REGISTERS_PER_THREAD = 40


@dataclass(frozen=True)
class TSUBatchResult:
    """Outcome of aligning a batch of pairs on the simulated GPU."""

    distances: tuple[int, ...]
    report: GPUKernelReport
    single_lane_extend_fraction: float
    total_extend_steps: int


def tsu_align_batch(
    pairs: list[tuple[str, str]],
    config: GPUConfig = A6000,
    block_size: int = 32,
    replicate: int = 1,
) -> TSUBatchResult:
    """Align *pairs* with TSU: one block per alignment.

    Returns the exact WFA edit distances plus the profiling report and
    the fraction of Extend steps that kept only a single lane busy —
    the statistic behind the paper's Figure 9 analysis.

    ``replicate`` models a batch of ``len(pairs) * replicate`` alignments
    by replaying the simulated pairs' traces: the paper's batches hold
    tens of thousands of pairs, far more than we can exactly simulate.
    """
    if not pairs:
        raise SimulationError("empty batch")
    if block_size != WARP_SIZE:
        raise SimulationError("TSU uses one 32-thread block per alignment")
    if replicate < 1:
        raise SimulationError("replicate must be >= 1")
    # Cache residency: every resident block streams its two sequences.
    # Short pairs fit the device L2 and replay from cache; 10 kbp pairs
    # overflow it and every Extend round pays DRAM bandwidth.
    mean_length = sum(len(a) + len(b) for a, b in pairs) / (2 * len(pairs))
    resident_blocks = config.sm_count * 16  # TSU is block-count limited
    l2_bytes = 6 * 1024 * 1024
    dram_fraction = min(1.0, max(0.15, 2 * mean_length * resident_blocks / l2_bytes))
    run = GPUKernelRun(
        name="tsu",
        config=config,
        block_size=block_size,
        registers_per_thread=TSU_REGISTERS_PER_THREAD,
        n_blocks=len(pairs) * replicate,
        dependent_fraction=0.8,  # WFA score steps are serial
        dram_fraction=dram_fraction,
    )
    distances = []
    single_lane = 0
    extend_steps = 0
    for a, b in pairs:
        result = wfa_edit_distance(a, b, record_extends=True)
        distances.append(result.distance)
        stats = result.stats
        # Next step: one thread per diagonal, whole-warp instructions.
        diagonals = stats.diagonals_processed
        full_warps, remainder = divmod(diagonals, WARP_SIZE)
        if full_warps:
            run.issue(WARP_SIZE, count=full_warps * 4 * replicate)
            run.memory_bulk(transactions=full_warps * 2 * replicate)
        if remainder:
            run.issue(remainder, count=4 * replicate)
            run.memory_bulk(transactions=replicate)
        # Extend step: every lane speculatively checks one cell of the
        # diagonal per round; useful lanes = extension length + 1.
        for length in stats.extend_lengths:
            extend_steps += 1
            useful = length + 1
            if useful <= 1:
                single_lane += 1
            rounds = -(-useful // WARP_SIZE)  # ceil
            for round_index in range(rounds):
                lanes_useful = min(WARP_SIZE, useful - round_index * WARP_SIZE)
                run.issue(max(1, lanes_useful), count=3 * replicate)
            # Sequence bytes for the round: two coalesced segment reads.
            run.memory_bulk(transactions=2 * rounds * replicate)
    report = run.report()
    return TSUBatchResult(
        distances=tuple(distances),
        report=report,
        single_lane_extend_fraction=single_lane / extend_steps if extend_steps else 0.0,
        total_extend_steps=extend_steps,
    )


def cpu_wfa_time_model(
    pairs: list[tuple[str, str]],
    ops_per_second: float = 3.7e10,
    replicate: int = 1,
) -> float:
    """Run-time model for the vectorized CPU WFA2-lib baseline (seconds).

    WFA2-lib autovectorizes well (the paper cites this), so the CPU
    baseline retires extend/next cells at SIMD rates; the default
    throughput corresponds to a well-vectorized AVX2 loop on the paper's
    Xeon Gold 6326.
    """
    total_ops = 0
    for a, b in pairs:
        result = wfa_edit_distance(a, b)
        total_ops += result.stats.cells_extended + 4 * result.stats.diagonals_processed
    return total_ops * replicate / ops_per_second
