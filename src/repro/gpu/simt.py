"""SIMT execution accounting: warps, divergence, coalescing, timing.

The paper profiles its two GPU kernels (TSU, PGSGD-GPU) with NVIDIA
Nsight Compute on an RTX A6000.  Our substitute executes the kernels'
real work (the same wavefronts / SGD updates, on the same data) while a
:class:`GPUKernelRun` accounts for every warp instruction — which lanes
were active — and every memory access — how many 32-byte transactions it
coalesced into.  Occupancy, warp utilization, memory-bandwidth
utilization, and run time fall out of those measured streams plus an
analytic latency-hiding model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

WARP_SIZE = 32
TRANSACTION_BYTES = 32


@dataclass(frozen=True)
class GPUConfig:
    """GPU device model (defaults: NVIDIA RTX A6000, Table 5)."""

    name: str = "rtx_a6000"
    sm_count: int = 84
    max_threads_per_sm: int = 1536
    max_registers_per_sm: int = 65536
    max_blocks_per_sm: int = 16
    max_shared_per_sm: int = 100 * 1024
    clock_ghz: float = 1.41
    memory_bandwidth_gbps: float = 768.0
    issue_interval_cycles: float = 1.0      # best-case per-scheduler issue
    schedulers_per_sm: int = 4
    dependent_latency_cycles: float = 8.0   # arithmetic result latency
    memory_latency_cycles: float = 400.0

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // WARP_SIZE

    @property
    def bytes_per_cycle(self) -> float:
        return self.memory_bandwidth_gbps * 1e9 / (self.clock_ghz * 1e9)


A6000 = GPUConfig()


@dataclass(frozen=True)
class Occupancy:
    """Residency limits for one kernel configuration."""

    blocks_per_sm: int
    warps_per_sm: int
    theoretical: float
    limited_by: str


def occupancy_for(
    config: GPUConfig,
    block_size: int,
    registers_per_thread: int,
    shared_bytes_per_block: int = 0,
) -> Occupancy:
    """Blocks resident per SM under thread/register/block-count limits."""
    if block_size <= 0 or block_size % WARP_SIZE:
        raise SimulationError("block size must be a positive multiple of 32")
    limits = {
        "threads": config.max_threads_per_sm // block_size,
        "registers": (
            config.max_registers_per_sm // (registers_per_thread * block_size)
            if registers_per_thread
            else config.max_blocks_per_sm
        ),
        "blocks": config.max_blocks_per_sm,
    }
    if shared_bytes_per_block:
        limits["shared"] = config.max_shared_per_sm // shared_bytes_per_block
    limiter = min(limits, key=limits.get)
    blocks = max(0, limits[limiter])
    if blocks == 0:
        raise SimulationError("kernel configuration cannot fit one block per SM")
    warps = blocks * (block_size // WARP_SIZE)
    warps = min(warps, config.max_warps_per_sm)
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        theoretical=warps / config.max_warps_per_sm,
        limited_by=limiter,
    )


@dataclass(frozen=True)
class GPUKernelReport:
    """Profiling report for one kernel launch (paper Table 7 metrics)."""

    name: str
    theoretical_occupancy: float
    achieved_occupancy: float
    warp_utilization: float
    memory_bw_utilization: float
    cycles: float
    time_ms: float
    warp_instructions: int
    memory_transactions: int
    issue_interval_cycles: float
    limited_by: str


class GPUKernelRun:
    """Accounting context for one kernel launch.

    Kernels call :meth:`issue` for each warp instruction (with the active
    lane count) and :meth:`memory` for each per-warp memory operation
    (with the lanes' addresses, which are coalesced into transactions).
    """

    def __init__(
        self,
        name: str,
        config: GPUConfig = A6000,
        block_size: int = 32,
        registers_per_thread: int = 32,
        n_blocks: int = 1,
        dependent_fraction: float = 0.7,
        dram_fraction: float = 1.0,
        lsu_cycles_per_transaction: float = 4.0,
    ) -> None:
        if n_blocks <= 0:
            raise SimulationError("need at least one block")
        if not 0.0 <= dependent_fraction <= 1.0:
            raise SimulationError("dependent_fraction must be in [0, 1]")
        self.name = name
        self.config = config
        self.block_size = block_size
        self.n_blocks = n_blocks
        self.dependent_fraction = dependent_fraction
        self.dram_fraction = dram_fraction
        self.lsu_cycles_per_transaction = lsu_cycles_per_transaction
        self.occupancy = occupancy_for(config, block_size, registers_per_thread)
        self.warp_instructions = 0
        self.active_lane_sum = 0
        self.memory_transactions = 0
        self.memory_bytes = 0
        self.memory_instructions = 0

    def issue(self, active_lanes: int, count: int = 1) -> None:
        """*count* warp instructions with *active_lanes* live lanes each."""
        if not 0 < active_lanes <= WARP_SIZE:
            raise SimulationError(f"active lanes {active_lanes} out of range")
        self.warp_instructions += count
        self.active_lane_sum += active_lanes * count

    def memory(self, addresses: list[int], bytes_per_lane: int = 4) -> None:
        """One per-warp memory instruction touching *addresses* (one per
        active lane); coalesced into 32-byte transactions."""
        if not addresses:
            return
        segments = {address // TRANSACTION_BYTES for address in addresses}
        span = (max(len(segments), 1))
        self.memory_instructions += 1
        self.memory_transactions += span
        self.memory_bytes += span * TRANSACTION_BYTES
        self.issue(min(len(addresses), WARP_SIZE))

    def memory_bulk(self, transactions: int, uncoalesced_lanes: int = 0) -> None:
        """Aggregate accounting for many identical memory instructions."""
        self.memory_instructions += max(1, transactions // 2)
        self.memory_transactions += transactions
        self.memory_bytes += transactions * TRANSACTION_BYTES

    def report(self) -> GPUKernelReport:
        """Close the run and compute the Table 7 metrics."""
        config = self.config
        if self.warp_instructions == 0:
            raise SimulationError("kernel issued no instructions")
        # Warp utilization: average active lanes per issued instruction.
        warp_utilization = self.active_lane_sum / (self.warp_instructions * WARP_SIZE)

        # Blocks distribute round-robin across SMs; run time follows the
        # per-SM instruction share (uniform blocks assumed).
        busy_sms = min(config.sm_count, self.n_blocks)
        instructions_per_sm = self.warp_instructions / busy_sms

        # Dependency-limited issue: a warp's dependent instruction chain
        # stalls it; resident warps hide each other's latency.  Residency
        # is also capped by how many blocks the grid actually provides.
        warps_per_block = self.block_size // WARP_SIZE
        available = -(-self.n_blocks // busy_sms) * warps_per_block  # ceil
        resident_warps = min(self.occupancy.warps_per_sm, available)
        per_warp_interval = (
            self.dependent_fraction * config.dependent_latency_cycles
            + (1 - self.dependent_fraction) * config.issue_interval_cycles
        )
        issue_interval = max(
            config.issue_interval_cycles / config.schedulers_per_sm,
            per_warp_interval / max(1, resident_warps),
        )
        compute_cycles = instructions_per_sm * issue_interval

        # DRAM bandwidth demand: device caches absorb (1 - dram_fraction)
        # of the transaction bytes (not simulated per-line; for the
        # full-size pangenome the paper reports ~31%/49% L1/L2 hit rates).
        memory_cycles = self.memory_bytes * self.dram_fraction / config.bytes_per_cycle
        # LSU serialization: uncoalesced warp accesses replay one
        # transaction at a time through the load/store unit.
        lsu_cycles = (
            self.memory_transactions * self.lsu_cycles_per_transaction / busy_sms
        )
        # Memory latency exposure when occupancy cannot hide it; cache-
        # resident working sets (dram_fraction < 1) see L2-ish latency.
        effective_latency = config.memory_latency_cycles * (
            0.4 + 0.6 * self.dram_fraction
        )
        latency_cycles = (
            self.memory_instructions
            / busy_sms
            * effective_latency
            / max(1, resident_warps)
        )
        cycles = max(compute_cycles, memory_cycles, latency_cycles, lsu_cycles)
        memory_fraction = memory_cycles / cycles if cycles else 0.0
        stall_fraction = 1.0 - (compute_cycles / cycles if cycles else 0.0)
        achieved = self.occupancy.theoretical * (1.0 - 0.2 * stall_fraction)
        time_ms = cycles / (config.clock_ghz * 1e9) * 1e3
        effective_interval = (
            cycles / (instructions_per_sm / config.schedulers_per_sm)
            if instructions_per_sm
            else 0.0
        )
        return GPUKernelReport(
            name=self.name,
            theoretical_occupancy=self.occupancy.theoretical,
            achieved_occupancy=achieved,
            warp_utilization=warp_utilization,
            memory_bw_utilization=memory_fraction,
            cycles=cycles,
            time_ms=time_ms,
            warp_instructions=self.warp_instructions,
            memory_transactions=self.memory_transactions,
            issue_interval_cycles=effective_interval,
            limited_by=self.occupancy.limited_by,
        )
