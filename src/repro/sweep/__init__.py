"""The sweep layer: run the scenario matrix as one gated grid.

:mod:`repro.sweep.driver` compiles a manifest's cells × kernels × scales
× seeds into executor jobs and runs them (pool, service, or test
runner); :mod:`repro.sweep.gates` holds the paper-shape assertions
applied to every ``fidelity = "paper"`` cell.  The companion
:mod:`repro.analysis.aggregate` turns a :class:`SweepResult` into
summary tables and cross-kernel leaderboards; ``repro sweep`` is the
CLI over all of it.
"""

from repro.sweep.driver import (
    SWEEP_FILE,
    CellResult,
    SweepPlan,
    SweepResult,
    compile_sweep,
    load_sweep,
    run_sweep,
    save_sweep,
)
from repro.sweep.gates import (
    COMPLETION_GATE,
    GATES,
    Gate,
    check_paper_gates,
    gate_studies,
    kernel_gates,
)

__all__ = [
    "SWEEP_FILE", "CellResult", "SweepPlan", "SweepResult",
    "compile_sweep", "load_sweep", "run_sweep", "save_sweep",
    "COMPLETION_GATE", "GATES", "Gate", "check_paper_gates",
    "gate_studies", "kernel_gates",
]
