"""The sweep driver: compile a kernel × cell × scale grid and run it.

``compile_sweep`` takes a scenario :class:`~repro.data.manifest.Manifest`
(a name under ``benchmarks/manifests/`` or a path), installs its cells
into the scenario registry, and expands a grid of executor
:class:`~repro.harness.executor.Job`\\ s — one per
``kernel × cell × scale × seed`` point, validated up front so a typo'd
kernel or study fails before anything runs.  Cells the manifest flags
``fidelity = "paper"`` automatically get the studies their paper-shape
gates need (:mod:`repro.sweep.gates`), and every paper-cell report is
gate-checked when results come back.

``run_sweep`` dispatches the grid three ways:

* through :func:`~repro.harness.executor.execute_jobs` (the default) —
  the same failure-isolated pool, result cache, and per-job timeouts
  ``repro run`` uses;
* through a running :class:`~repro.serve.BenchService` (``service=``) —
  submissions coalesce and share the service's cache, so a sweep and
  interactive clients dedupe against each other;
* through a ``runner`` callable (``Job -> KernelReport``) — the test
  hook, mirroring :class:`BenchService`'s.

The result is a flat list of :class:`CellResult`\\ s — one per grid
point, each carrying its report, its origin (``executed`` / ``cached`` /
``coalesced``), and any gate violations — which
:mod:`repro.analysis.aggregate` folds into summary tables and
leaderboards.  ``save_sweep``/``load_sweep`` round-trip the whole thing
through ``sweep.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.data.manifest import Manifest, install_manifest, resolve_manifest
from repro.errors import SweepError
from repro.harness.executor import (
    EXECUTED,
    Job,
    JobOutcome,
    execute_jobs,
    validate_names,
)
from repro.harness.runner import SCHEMA_VERSION, KernelReport, run_metadata
from repro.kernels.base import resolve_backend
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.sweep.gates import check_paper_gates, gate_studies
from repro.uarch.cache import MACHINE_B, CacheConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.store import ResultStore
    from repro.serve.service import BenchService


@dataclass(frozen=True)
class SweepPlan:
    """A validated grid: the manifest plus one job per grid point.

    ``jobs[i]`` belongs to cell ``cells[i]``; ``paper[i]`` says whether
    that cell's report must pass the paper-shape gates.
    """

    manifest: Manifest
    jobs: tuple[Job, ...]
    cells: tuple[str, ...]
    paper: tuple[bool, ...]
    kernels: tuple[str, ...]
    studies: tuple[str, ...]
    scales: tuple[float, ...]
    seeds: tuple[int, ...]
    #: Requested backend axis (``""`` = each kernel's default); the
    #: jobs carry the per-kernel *resolved* names.
    backends: tuple[str, ...] = ("",)

    def __len__(self) -> int:
        return len(self.jobs)


def compile_sweep(
    manifest: "Manifest | str | Path",
    kernels: tuple[str, ...],
    studies: tuple[str, ...] = ("timing",),
    scales: tuple[float, ...] = (1.0,),
    seeds: tuple[int, ...] = (0,),
    cells: "tuple[str, ...] | None" = None,
    cache_config: CacheConfig = MACHINE_B,
    backends: "tuple[str, ...] | None" = None,
) -> SweepPlan:
    """Compile a ``kernel × cell × scale × seed × backend`` grid.

    *manifest* may be a parsed :class:`Manifest`, a registered manifest
    name, or a TOML path; its cells are installed into the scenario
    registry so the executor (and the result cache's dataset digests)
    can resolve them.  *cells* restricts the grid to a subset of cell
    names; paper-fidelity cells get their gate studies unioned in.

    *backends* adds an execution-backend axis (``None``: one implicit
    axis point, each kernel's default).  Every named backend must be
    supported by every requested kernel — resolution happens here, at
    compile time, so a grid mixing e.g. ``gpu`` with a CPU-only kernel
    fails with a clear error before anything runs.
    """
    if not isinstance(manifest, Manifest):
        manifest = resolve_manifest(manifest)
    kernels = tuple(kernels)
    studies = tuple(studies)
    if not kernels:
        raise SweepError("a sweep needs at least one kernel")
    validate_names(kernels, studies)
    for scale in scales:
        if not scale > 0:
            raise SweepError(f"sweep scales must be > 0, got {scale!r}")
    if not scales:
        raise SweepError("a sweep needs at least one scale")
    if not seeds:
        raise SweepError("a sweep needs at least one seed")
    backend_axis = tuple(backends) if backends else ("",)
    # Resolve every (kernel, backend) pair up front: unsupported
    # combinations fail at compile time with the registry's error.
    resolved = {
        (kernel, backend): resolve_backend(kernel, backend or None)
        for backend in backend_axis for kernel in kernels
    }

    if cells is None:
        selected = list(manifest.cells)
    else:
        known = manifest.cell_names()
        unknown = sorted(set(cells) - set(known))
        if unknown:
            raise SweepError(
                f"manifest {manifest.name!r} has no cell(s) "
                f"{', '.join(repr(name) for name in unknown)}; "
                f"known: {', '.join(known)}"
            )
        by_name = {cell.name: cell for cell in manifest.cells}
        selected = [by_name[name] for name in cells]
    if not selected:
        raise SweepError(f"manifest {manifest.name!r} selected no cells")

    install_manifest(manifest)

    jobs: list[Job] = []
    cell_names: list[str] = []
    paper_flags: list[bool] = []
    for cell in selected:
        is_paper = cell.fidelity == "paper"
        for scale in scales:
            for seed in seeds:
                for backend in backend_axis:
                    for kernel in kernels:
                        job_backend = resolved[(kernel, backend)]
                        job_studies = studies
                        if is_paper:
                            extra = tuple(
                                study
                                for study in gate_studies(kernel, job_backend)
                                if study not in job_studies
                            )
                            job_studies = job_studies + extra
                        jobs.append(Job(
                            kernel=kernel,
                            studies=job_studies,
                            scale=scale,
                            seed=seed,
                            cache_config=cache_config,
                            scenario=cell.name,
                            backend=job_backend,
                        ))
                        cell_names.append(cell.name)
                        paper_flags.append(is_paper)
    return SweepPlan(
        manifest=manifest,
        jobs=tuple(jobs),
        cells=tuple(cell_names),
        paper=tuple(paper_flags),
        kernels=kernels,
        studies=studies,
        scales=tuple(scales),
        seeds=tuple(seeds),
        backends=backend_axis,
    )


@dataclass
class CellResult:
    """One grid point's outcome: the report plus sweep-level context."""

    scenario: str
    kernel: str
    scale: float
    seed: int
    fidelity: str
    origin: str
    report: KernelReport
    gate_violations: tuple[str, ...] = ()
    #: Resolved execution backend the grid point ran on ("" in results
    #: predating the backend plane).
    backend: str = ""

    @property
    def ok(self) -> bool:
        """Completed without a kernel error or a gate violation."""
        return self.report.error is None and not self.gate_violations


@dataclass
class SweepResult:
    """Every grid point's :class:`CellResult`, plus run provenance."""

    manifest_name: str
    results: list[CellResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def errors(self) -> list[CellResult]:
        return [r for r in self.results if r.report.error is not None]

    @property
    def gate_failures(self) -> list[CellResult]:
        return [r for r in self.results if r.gate_violations]

    def origin_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.origin] = counts.get(result.origin, 0) + 1
        return counts


def _gate_check(plan: SweepPlan, index: int,
                report: KernelReport) -> tuple[str, ...]:
    if not plan.paper[index]:
        return ()
    return check_paper_gates(report)


def _fidelity(plan: SweepPlan, index: int) -> str:
    return "paper" if plan.paper[index] else "bench"


def _results_from_outcomes(
    plan: SweepPlan, outcomes: "list[JobOutcome]"
) -> list[CellResult]:
    # execute_jobs drops outcomes only for jobs it never produced a
    # report for (it doesn't today); align defensively by position.
    results = []
    for index, outcome in enumerate(outcomes):
        job = outcome.job
        results.append(CellResult(
            scenario=job.scenario,
            kernel=job.kernel,
            scale=job.scale,
            seed=job.seed,
            fidelity=_fidelity(plan, index),
            origin=outcome.origin,
            report=outcome.report,
            gate_violations=_gate_check(plan, index, outcome.report),
            backend=job.backend,
        ))
    return results


def _record_sweep_metrics(plan: SweepPlan, results: "list[CellResult]",
                          wall_seconds: float) -> None:
    """Fold a sweep's outcome into the process-current metrics registry
    so the telemetry plane (and ``repro obs export``) can see sweeps
    alongside serve traffic: per-origin result counters, error and
    gate-failure counters, and a wall-seconds gauge, all labeled by
    manifest."""
    registry = obs_metrics.current_registry()
    manifest = plan.manifest.name
    for result in results:
        registry.counter("sweep.results", manifest=manifest,
                         origin=result.origin).inc()
        if result.report.error is not None:
            registry.counter("sweep.errors", manifest=manifest,
                             kernel=result.kernel).inc()
        if result.gate_violations:
            registry.counter("sweep.gate_failures", manifest=manifest,
                             kernel=result.kernel).inc()
    registry.gauge("sweep.wall_seconds", manifest=manifest).set(wall_seconds)
    registry.gauge("sweep.grid_points", manifest=manifest).set(len(plan))


def run_sweep(
    plan: SweepPlan,
    workers: int = 1,
    timeout: "float | None" = None,
    reuse: bool = True,
    store: "ResultStore | None" = None,
    service: "BenchService | None" = None,
    runner: "Callable[[Job], KernelReport] | None" = None,
) -> SweepResult:
    """Run every job of *plan* and return gate-checked cell results.

    Exactly one execution path applies: *runner* (test hook) wins over
    *service* (submit through a :class:`BenchService`, sharing its
    coalescing and cache) which wins over the default executor path
    (:func:`execute_jobs` with *workers*/*timeout*/*reuse*/*store*).
    """
    started = time.monotonic()
    with trace.timed_span(f"sweep/{plan.manifest.name}",
                          {"grid_points": len(plan)}):
        if runner is not None:
            outcomes = [JobOutcome(job=job, report=runner(job),
                                   origin=EXECUTED)
                        for job in plan.jobs]
            results = _results_from_outcomes(plan, outcomes)
        elif service is not None:
            handles = [service.submit_job(job) for job in plan.jobs]
            results = []
            for index, handle in enumerate(handles):
                report = handle.wait(timeout=timeout)
                results.append(CellResult(
                    scenario=handle.job.scenario,
                    kernel=handle.job.kernel,
                    scale=handle.job.scale,
                    seed=handle.job.seed,
                    fidelity=_fidelity(plan, index),
                    origin=handle.origin or EXECUTED,
                    report=report,
                    gate_violations=_gate_check(plan, index, report),
                    backend=handle.job.backend,
                ))
        else:
            outcomes = execute_jobs(plan.jobs, workers=workers,
                                    timeout=timeout, reuse=reuse,
                                    store=store)
            results = _results_from_outcomes(plan, outcomes)
    _record_sweep_metrics(plan, results, time.monotonic() - started)
    return SweepResult(
        manifest_name=plan.manifest.name,
        results=results,
        wall_seconds=time.monotonic() - started,
        metadata={
            **run_metadata(),
            "manifest": plan.manifest.name,
            "kernels": list(plan.kernels),
            "studies": list(plan.studies),
            "scales": list(plan.scales),
            "seeds": list(plan.seeds),
            "backends": [backend or "default" for backend in plan.backends],
            "cells": len(set(plan.cells)),
            "grid_points": len(plan),
        },
    )


#: File name ``save_sweep`` writes inside its output directory.
SWEEP_FILE = "sweep.json"


def save_sweep(result: SweepResult, out_dir: "str | Path") -> Path:
    """Serialize *result* to ``<out_dir>/sweep.json``; returns the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / SWEEP_FILE
    payload = {
        "schema_version": SCHEMA_VERSION,
        "manifest": result.manifest_name,
        "wall_seconds": result.wall_seconds,
        "metadata": result.metadata,
        "results": [
            {
                "scenario": r.scenario,
                "kernel": r.kernel,
                "scale": r.scale,
                "seed": r.seed,
                "fidelity": r.fidelity,
                "origin": r.origin,
                "backend": r.backend,
                "gate_violations": list(r.gate_violations),
                "report": asdict(r.report),
            }
            for r in result.results
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_sweep(path: "str | Path") -> SweepResult:
    """Load a :func:`save_sweep` file (or the directory holding one)."""
    target = Path(path)
    if target.is_dir():
        target = target / SWEEP_FILE
    try:
        payload = json.loads(target.read_text())
    except OSError as error:
        raise SweepError(f"cannot read sweep result {target}: {error}")
    except ValueError as error:
        raise SweepError(f"sweep result {target} is not JSON: {error}")
    if not isinstance(payload, dict) or "results" not in payload:
        raise SweepError(f"sweep result {target} has no results")
    version = payload.get("schema_version")
    if isinstance(version, int) and version > SCHEMA_VERSION:
        raise SweepError(
            f"unsupported sweep schema {version!r} (this build reads "
            f"<= {SCHEMA_VERSION})"
        )
    results = []
    for record in payload["results"]:
        report = KernelReport.from_dict(record["report"])
        results.append(CellResult(
            scenario=record["scenario"],
            kernel=record["kernel"],
            scale=record["scale"],
            seed=record["seed"],
            fidelity=record.get("fidelity", "bench"),
            origin=record.get("origin", EXECUTED),
            report=report,
            gate_violations=tuple(record.get("gate_violations", ())),
            backend=record.get("backend", report.backend),
        ))
    return SweepResult(
        manifest_name=payload.get("manifest", ""),
        results=results,
        wall_seconds=payload.get("wall_seconds", 0.0),
        metadata=payload.get("metadata", {}),
    )
