"""Per-cell paper-shape gates: fidelity assertions for sweep cells.

The characterization benches assert the paper's figure shapes against
the ``default`` corpus (bench_fig6 and friends) — but a sweep runs
*hundreds* of cells, and scenario growth must not silently break the
shapes the reproduction is anchored to.  Cells a manifest flags
``fidelity = "paper"`` get these gates asserted on every sweep: a
single-kernel distillation of the paper's Figure 6 / Table 6 / Table 7
claims, loose enough to hold across run scales, tight enough that a
broken kernel model (or a corpus that no longer matches the paper's)
fails loudly.

Each :class:`Gate` declares the study whose data it reads, so the sweep
compiler can force those studies onto paper-cell jobs even when the
caller asked for ``timing`` only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.runner import KernelReport


@dataclass(frozen=True)
class Gate:
    """One named shape assertion over a :class:`KernelReport`.

    ``check`` returns ``None`` when the shape holds, else a violation
    message; ``studies`` are the study names whose report fields the
    check reads (the sweep compiler unions them into paper-cell jobs).
    """

    name: str
    studies: tuple[str, ...]
    check: Callable[["KernelReport"], "str | None"]

    def violation(self, report: "KernelReport") -> "str | None":
        message = self.check(report)
        return None if message is None else f"{self.name}: {message}"


def _completed(report: "KernelReport") -> "str | None":
    if report.error is not None:
        return f"kernel failed: {report.error}"
    if report.inputs_processed <= 0:
        return "kernel processed no inputs"
    return None


def _topdown(report: "KernelReport", slot: str) -> "float | None":
    """A top-down slot fraction, or ``None`` when the data is absent."""
    return report.topdown.get(slot) if report.topdown else None


def _topdown_gate(slot_check: Callable[[dict], "str | None"]):
    def check(report: "KernelReport") -> "str | None":
        if not report.topdown:
            return "no top-down data (topdown study missing from report)"
        return slot_check(report.topdown)

    return check


def _tc_retires(topdown: dict) -> "str | None":
    if topdown["retiring"] < 0.5:
        return (f"retiring {topdown['retiring']:.3f} < 0.5 — TC should "
                "retire the most of any kernel (paper Fig. 6)")
    return None


def _gbwt_not_memory_bound(topdown: dict) -> "str | None":
    if topdown["memory_bound"] >= 0.15:
        return (f"memory_bound {topdown['memory_bound']:.3f} >= 0.15 — "
                "GBWT is NOT memory bound (the paper's surprise)")
    return None


def _gssw_core_memory(topdown: dict) -> "str | None":
    if topdown["core_bound"] <= 0.25:
        return f"core_bound {topdown['core_bound']:.3f} <= 0.25"
    if topdown["memory_bound"] <= 0.05:
        return f"memory_bound {topdown['memory_bound']:.3f} <= 0.05"
    return None


def _gbv_bad_speculation(topdown: dict) -> "str | None":
    if topdown["bad_speculation"] <= 0.15:
        return (f"bad_speculation {topdown['bad_speculation']:.3f} <= 0.15 "
                "— GBV's branchy bit-scan should mispredict heavily")
    return None


def _pgsgd_memory_core(topdown: dict) -> "str | None":
    bound = topdown["memory_bound"] + topdown["core_bound"]
    if bound <= 0.6:
        return f"memory+core bound {bound:.3f} <= 0.6"
    return None


def _gwfa_core_bound(topdown: dict) -> "str | None":
    if topdown["core_bound"] <= 0.2:
        return f"core_bound {topdown['core_bound']:.3f} <= 0.2"
    return None


def _tsu_gpu_profile(report: "KernelReport") -> "str | None":
    gpu = report.gpu
    if not gpu:
        return "no GPU counters (gpu study missing from report)"
    occupancy = gpu.get("theoretical_occupancy", 0.0)
    if abs(occupancy - 1 / 3) > 0.01:
        return (f"theoretical occupancy {occupancy:.3f} != 1/3 "
                "(paper Table 7: TSU's register pressure caps occupancy)")
    achieved = gpu.get("achieved_occupancy", 0.0)
    if not 0.0 < achieved <= occupancy + 1e-9:
        return f"achieved occupancy {achieved:.3f} outside (0, theoretical]"
    if gpu.get("gpu_time_ms", 0.0) <= 0.0:
        return "gpu_time_ms is not positive"
    return None


#: The gate every kernel passes through, even ones without a
#: kernel-specific shape.
COMPLETION_GATE = Gate("completed", (), _completed)

#: kernel name -> its paper-shape gates (beyond completion).
GATES: dict[str, tuple[Gate, ...]] = {
    "tc": (Gate("tc-retiring-dominant", ("topdown",),
                _topdown_gate(_tc_retires)),),
    "gbwt": (Gate("gbwt-not-memory-bound", ("topdown",),
                  _topdown_gate(_gbwt_not_memory_bound)),),
    "gssw": (Gate("gssw-core-and-memory", ("topdown",),
                  _topdown_gate(_gssw_core_memory)),),
    "gbv": (Gate("gbv-bad-speculation", ("topdown",),
                 _topdown_gate(_gbv_bad_speculation)),),
    "pgsgd": (Gate("pgsgd-memory-core-bound", ("topdown",),
                   _topdown_gate(_pgsgd_memory_core)),),
    "gwfa-lr": (Gate("gwfa-lr-core-bound", ("topdown",),
                     _topdown_gate(_gwfa_core_bound)),),
    "gwfa-cr": (Gate("gwfa-cr-core-bound", ("topdown",),
                     _topdown_gate(_gwfa_core_bound)),),
    "tsu": (Gate("tsu-gpu-profile", ("gpu",), _tsu_gpu_profile),),
}


def kernel_gates(kernel: str) -> tuple[Gate, ...]:
    """Every gate a paper cell asserts for *kernel*."""
    return (COMPLETION_GATE,) + GATES.get(kernel, ())


def gate_studies(kernel: str) -> tuple[str, ...]:
    """Studies the paper gates for *kernel* need, in a stable order."""
    studies: list[str] = []
    for gate in kernel_gates(kernel):
        for study in gate.studies:
            if study not in studies:
                studies.append(study)
    return tuple(studies)


def check_paper_gates(report: "KernelReport") -> tuple[str, ...]:
    """All gate violations for *report* (empty means the shapes hold)."""
    violations = []
    for gate in kernel_gates(report.kernel):
        message = gate.violation(report)
        if message is not None:
            violations.append(message)
    return tuple(violations)
