"""Per-cell paper-shape gates: fidelity assertions for sweep cells.

The characterization benches assert the paper's figure shapes against
the ``default`` corpus (bench_fig6 and friends) — but a sweep runs
*hundreds* of cells, and scenario growth must not silently break the
shapes the reproduction is anchored to.  Cells a manifest flags
``fidelity = "paper"`` get these gates asserted on every sweep: a
single-kernel distillation of the paper's Figure 6 / Table 6 / Table 7
claims, loose enough to hold across run scales, tight enough that a
broken kernel model (or a corpus that no longer matches the paper's)
fails loudly.

Each :class:`Gate` declares the study whose data it reads, so the sweep
compiler can force those studies onto paper-cell jobs even when the
caller asked for ``timing`` only.

Gates are declared per ``(kernel, backend)``: a shape holds only for
the backend it was measured on (the Figure 6 top-down profiles are the
*vectorized* CPU kernels; the Table 7 SIMT counters are ``gpu`` runs),
so a scalar-oracle or GPU grid point is never judged against a profile
from a different execution variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.backends import GPU, VECTORIZED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.runner import KernelReport


@dataclass(frozen=True)
class Gate:
    """One named shape assertion over a :class:`KernelReport`.

    ``check`` returns ``None`` when the shape holds, else a violation
    message; ``studies`` are the study names whose report fields the
    check reads (the sweep compiler unions them into paper-cell jobs).
    """

    name: str
    studies: tuple[str, ...]
    check: Callable[["KernelReport"], "str | None"]

    def violation(self, report: "KernelReport") -> "str | None":
        message = self.check(report)
        return None if message is None else f"{self.name}: {message}"


def _completed(report: "KernelReport") -> "str | None":
    if report.error is not None:
        return f"kernel failed: {report.error}"
    if report.inputs_processed <= 0:
        return "kernel processed no inputs"
    return None


def _topdown(report: "KernelReport", slot: str) -> "float | None":
    """A top-down slot fraction, or ``None`` when the data is absent."""
    return report.topdown.get(slot) if report.topdown else None


def _topdown_gate(slot_check: Callable[[dict], "str | None"]):
    def check(report: "KernelReport") -> "str | None":
        if not report.topdown:
            return "no top-down data (topdown study missing from report)"
        return slot_check(report.topdown)

    return check


def _tc_retires(topdown: dict) -> "str | None":
    if topdown["retiring"] < 0.5:
        return (f"retiring {topdown['retiring']:.3f} < 0.5 — TC should "
                "retire the most of any kernel (paper Fig. 6)")
    return None


def _gbwt_not_memory_bound(topdown: dict) -> "str | None":
    if topdown["memory_bound"] >= 0.15:
        return (f"memory_bound {topdown['memory_bound']:.3f} >= 0.15 — "
                "GBWT is NOT memory bound (the paper's surprise)")
    return None


def _gssw_core_memory(topdown: dict) -> "str | None":
    if topdown["core_bound"] <= 0.25:
        return f"core_bound {topdown['core_bound']:.3f} <= 0.25"
    if topdown["memory_bound"] <= 0.05:
        return f"memory_bound {topdown['memory_bound']:.3f} <= 0.05"
    return None


def _gbv_bad_speculation(topdown: dict) -> "str | None":
    if topdown["bad_speculation"] <= 0.15:
        return (f"bad_speculation {topdown['bad_speculation']:.3f} <= 0.15 "
                "— GBV's branchy bit-scan should mispredict heavily")
    return None


def _pgsgd_memory_core(topdown: dict) -> "str | None":
    bound = topdown["memory_bound"] + topdown["core_bound"]
    if bound <= 0.6:
        return f"memory+core bound {bound:.3f} <= 0.6"
    return None


def _gwfa_core_bound(topdown: dict) -> "str | None":
    if topdown["core_bound"] <= 0.2:
        return f"core_bound {topdown['core_bound']:.3f} <= 0.2"
    return None


def _gpu_profile_gate(expected_occupancy: float, label: str, why: str):
    """A Table 7-style SIMT sanity shape: theoretical occupancy pinned
    at the register-pressure value (*label* is its display form, e.g.
    ``1/3``), achieved within (0, theoretical], positive kernel time."""

    def check(report: "KernelReport") -> "str | None":
        gpu = report.gpu
        if not gpu:
            return "no GPU counters (gpu study missing from report)"
        occupancy = gpu.get("theoretical_occupancy", 0.0)
        if abs(occupancy - expected_occupancy) > 0.01:
            return (f"theoretical occupancy {occupancy:.3f} != "
                    f"{label} ({why})")
        achieved = gpu.get("achieved_occupancy", 0.0)
        if not 0.0 < achieved <= occupancy + 1e-9:
            return (f"achieved occupancy {achieved:.3f} outside "
                    "(0, theoretical]")
        if gpu.get("gpu_time_ms", 0.0) <= 0.0:
            return "gpu_time_ms is not positive"
        return None

    return check


_tsu_gpu_profile = _gpu_profile_gate(
    1 / 3, "1/3", "paper Table 7: TSU's register pressure caps occupancy")

#: PGSGD-GPU: 44 registers/thread at block size 1024 leave one resident
#: block per SM on the A6000 — 32 of 48 warp slots, occupancy 2/3
#: (the kernel is latency- not occupancy-limited).
_pgsgd_gpu_profile = _gpu_profile_gate(
    2 / 3, "2/3", "44 regs/thread @ block 1024: one block/SM, 32/48 warps")


#: The gate every kernel passes through, even ones without a
#: kernel-specific shape.
COMPLETION_GATE = Gate("completed", (), _completed)

#: (kernel name, backend) -> the paper-shape gates measured on that
#: backend (beyond completion).  The Figure 6 top-down shapes apply to
#: the vectorized CPU kernels; the SIMT-counter shapes to gpu runs.
GATES: dict[tuple[str, str], tuple[Gate, ...]] = {
    ("tc", VECTORIZED): (Gate("tc-retiring-dominant", ("topdown",),
                              _topdown_gate(_tc_retires)),),
    ("gbwt", VECTORIZED): (Gate("gbwt-not-memory-bound", ("topdown",),
                                _topdown_gate(_gbwt_not_memory_bound)),),
    ("gssw", VECTORIZED): (Gate("gssw-core-and-memory", ("topdown",),
                                _topdown_gate(_gssw_core_memory)),),
    ("gbv", VECTORIZED): (Gate("gbv-bad-speculation", ("topdown",),
                               _topdown_gate(_gbv_bad_speculation)),),
    ("pgsgd", VECTORIZED): (Gate("pgsgd-memory-core-bound", ("topdown",),
                                 _topdown_gate(_pgsgd_memory_core)),),
    ("pgsgd", GPU): (Gate("pgsgd-gpu-profile", ("gpu",),
                          _pgsgd_gpu_profile),),
    ("gwfa-lr", VECTORIZED): (Gate("gwfa-lr-core-bound", ("topdown",),
                                   _topdown_gate(_gwfa_core_bound)),),
    ("gwfa-cr", VECTORIZED): (Gate("gwfa-cr-core-bound", ("topdown",),
                                   _topdown_gate(_gwfa_core_bound)),),
    ("tsu", GPU): (Gate("tsu-gpu-profile", ("gpu",), _tsu_gpu_profile),),
}


def _resolved(kernel: str, backend: "str | None") -> str:
    from repro.kernels.base import resolve_backend

    try:
        return resolve_backend(kernel, backend or None)
    except Exception:  # unknown kernel: no backend-specific gates apply
        return backend or ""


def kernel_gates(kernel: str, backend: "str | None" = None) -> tuple[Gate, ...]:
    """Every gate a paper cell asserts for *kernel* on *backend*
    (``None``: the kernel's default backend)."""
    return (COMPLETION_GATE,) + GATES.get((kernel, _resolved(kernel, backend)), ())


def gate_studies(kernel: str, backend: "str | None" = None) -> tuple[str, ...]:
    """Studies the paper gates for *kernel* need, in a stable order."""
    studies: list[str] = []
    for gate in kernel_gates(kernel, backend):
        for study in gate.studies:
            if study not in studies:
                studies.append(study)
    return tuple(studies)


def check_paper_gates(report: "KernelReport") -> tuple[str, ...]:
    """All gate violations for *report* (empty means the shapes hold).

    The gates consulted are the ones measured on ``report.backend`` —
    a report from a different backend is only held to completion.
    """
    violations = []
    for gate in kernel_gates(report.kernel, report.backend or None):
        message = gate.violation(report)
        if message is not None:
            violations.append(message)
    return tuple(violations)
