"""Analyses: thread scaling, runtime extrapolation, report rendering,
and cross-scenario sweep aggregation (summary tables + leaderboards)."""

from repro.analysis.aggregate import (
    LEADERBOARD_METRICS,
    LEADERBOARD_TSV,
    SUMMARY_TSV,
    LeaderboardEntry,
    SummaryRow,
    aggregate_sweep,
    leaderboard,
    render_leaderboard,
    summary_rows,
    topdown_drift,
)
from repro.analysis.estimate import (
    COVERAGE,
    HUMAN_GENOME_BP,
    PAPER_TABLE1_HOURS,
    PYTHON_TO_CPP_FACTOR,
    GenomeEstimate,
    estimate_genome_runtime,
    normalize_to_baseline,
    reads_for_coverage,
)
from repro.analysis.report import render_bars, render_stacked_fractions, render_table
from repro.analysis.threads import (
    FIGURE5_THREADS,
    FIGURE5_WORKLOADS,
    MACHINE_A_TOPOLOGY,
    MachineModel,
    WorkloadModel,
    figure5_table,
)

__all__ = [
    "LEADERBOARD_METRICS", "LEADERBOARD_TSV", "SUMMARY_TSV",
    "LeaderboardEntry", "SummaryRow", "aggregate_sweep", "leaderboard",
    "render_leaderboard", "summary_rows", "topdown_drift",
    "COVERAGE", "HUMAN_GENOME_BP", "PAPER_TABLE1_HOURS", "PYTHON_TO_CPP_FACTOR",
    "GenomeEstimate", "estimate_genome_runtime", "normalize_to_baseline",
    "reads_for_coverage",
    "render_bars", "render_stacked_fractions", "render_table",
    "FIGURE5_THREADS", "FIGURE5_WORKLOADS", "MACHINE_A_TOPOLOGY",
    "MachineModel", "WorkloadModel", "figure5_table",
]
