"""Plain-text tables and bar charts for the benchmark reports.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError

BAR_WIDTH = 40


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """A boxless aligned-column table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ReproError("row width does not match headers")
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    values: Mapping[str, float],
    title: str | None = None,
    unit: str = "",
    width: int = BAR_WIDTH,
) -> str:
    """Horizontal bars scaled to the maximum value."""
    if not values:
        raise ReproError("nothing to plot")
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in values.items():
        bar = "#" * (round(width * value / peak) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_width)}  {value:>10.3f}{unit}  {bar}")
    return "\n".join(lines)


def render_stacked_fractions(
    series: Mapping[str, Mapping[str, float]],
    components: Sequence[str],
    title: str | None = None,
    width: int = BAR_WIDTH,
) -> str:
    """Stacked 100% bars (the Figure 2/3/6 style), one row per entry.

    Each component gets a distinct fill character in order.
    """
    fills = "#=+:.*o%"
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    legend = "  ".join(
        f"{fills[i % len(fills)]}={component}" for i, component in enumerate(components)
    )
    lines.append(f"legend: {legend}")
    label_width = max(len(label) for label in series)
    for label, fractions in series.items():
        total = sum(fractions.get(c, 0.0) for c in components)
        bar = ""
        for index, component in enumerate(components):
            share = fractions.get(component, 0.0) / total if total else 0.0
            bar += fills[index % len(fills)] * round(width * share)
        lines.append(f"{label.ljust(label_width)}  |{bar.ljust(width)}|")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
