"""Whole-genome runtime extrapolation (Table 1).

The paper times each tool on chromosome-20 data and scales by the read
count needed for 30x whole-genome coverage.  We do the same: measure
per-read time on the synthetic corpus, scale to the read count a 3.1 Gbp
genome needs at 30x, and divide by a Python-vs-C++ throughput factor so
the pseudo-hours land in a recognizable range.  The *ratios* between
tools — the reproducible claim — are reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

HUMAN_GENOME_BP = 3_100_000_000
COVERAGE = 30

#: Our kernels are pure Python + numpy; the paper's are C++.  This single
#: constant converts measured seconds into comparable pseudo-hours and
#: cancels out of every tool-to-tool ratio.
PYTHON_TO_CPP_FACTOR = 40.0


@dataclass(frozen=True)
class GenomeEstimate:
    """Extrapolated whole-genome runtime for one tool."""

    tool: str
    per_read_seconds: float
    read_length: int
    reads_needed: int
    estimated_hours: float


def reads_for_coverage(read_length: int) -> int:
    """Reads needed for 30x coverage of a human genome."""
    if read_length <= 0:
        raise ReproError("read length must be positive")
    return round(HUMAN_GENOME_BP * COVERAGE / read_length)


def estimate_genome_runtime(
    tool: str,
    measured_seconds: float,
    reads_measured: int,
    read_length: int,
    python_factor: float = PYTHON_TO_CPP_FACTOR,
) -> GenomeEstimate:
    """Extrapolate a measured batch to whole-genome scale (Table 1)."""
    if reads_measured <= 0 or measured_seconds < 0:
        raise ReproError("invalid measurement")
    per_read = measured_seconds / reads_measured
    reads_needed = reads_for_coverage(read_length)
    hours = per_read * reads_needed / python_factor / 3600.0
    return GenomeEstimate(
        tool=tool,
        per_read_seconds=per_read,
        read_length=read_length,
        reads_needed=reads_needed,
        estimated_hours=hours,
    )


def normalize_to_baseline(
    estimates: list[GenomeEstimate], baseline_tool: str
) -> dict[str, float]:
    """Tool-to-baseline runtime ratios (the shape claim of Table 1)."""
    baseline = next(
        (e for e in estimates if e.tool == baseline_tool), None
    )
    if baseline is None or baseline.estimated_hours <= 0:
        raise ReproError(f"no usable baseline {baseline_tool!r}")
    return {e.tool: e.estimated_hours / baseline.estimated_hours for e in estimates}


#: Table 1's published values (hours), for EXPERIMENTS.md comparisons.
PAPER_TABLE1_HOURS = {
    "vg_map": 67.1,
    "giraffe": 4.8,
    "graphaligner": 9.1,
    "minigraph-lr": 20.5,
    "bwa_mem": 1.3,
}
