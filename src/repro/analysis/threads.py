"""Thread-scaling model (Figure 5).

We run on one core (CPython), so scaling is *modelled*, not measured —
but from the same causes the paper identifies, with per-tool parameters
taken from our instrumented single-thread runs where possible:

* mapping tools parallelize over reads: near-linear to the 28 physical
  cores of Machine A, then a hyperthreading knee (shared-core yield);
* Minigraph-cr has no intra-query parallelism (``batch_limit=1``);
* seqwish overlaps transclosure with serialized graph emission, so
  threads stop helping once emission becomes the bottleneck;
* odgi layout = serial path-index build + Hogwild updates that are
  memory-bandwidth-limited and barrier-synchronized per iteration.

The machine model is Machine A (2 sockets x 14 cores x 2 threads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

#: Figure 5's thread counts.
FIGURE5_THREADS = (4, 14, 28, 56)


@dataclass(frozen=True)
class MachineModel:
    """Socket/core/SMT topology of the scaling machine."""

    physical_cores: int = 28
    smt_per_core: int = 2
    #: Marginal throughput of a hyperthread sharing a busy core.
    smt_yield: float = 0.25
    #: Usable memory-bandwidth multiple of one core's demand.
    bandwidth_cores: float = 12.0

    @property
    def max_threads(self) -> int:
        return self.physical_cores * self.smt_per_core

    def effective_cores(self, threads: int) -> float:
        """Compute-throughput in units of one core."""
        physical = min(threads, self.physical_cores)
        hyper = max(0, min(threads - self.physical_cores,
                           self.physical_cores * (self.smt_per_core - 1)))
        return physical + hyper * self.smt_yield


MACHINE_A_TOPOLOGY = MachineModel()


@dataclass(frozen=True)
class WorkloadModel:
    """Scaling-relevant structure of one workload.

    Attributes:
        name: Tool label.
        serial_fraction: Fraction of single-thread time that cannot
            parallelize (setup, path-index build, final output).
        batch_limit: Maximum exploitable parallelism (1 = sequential).
        memory_bound_fraction: Fraction of parallel work that is
            bandwidth-limited (scales only to ``bandwidth_cores``).
        pipeline_serial_fraction: Work serialized behind a pipeline
            stage that cannot be parallelized (seqwish's graph emission):
            parallel time cannot drop below this fraction.
        barrier_imbalance: Per-iteration barrier cost factor per thread
            (PGSGD's 30 iteration barriers): adds
            ``barrier_imbalance * log2(threads)`` fractional overhead.
    """

    name: str
    serial_fraction: float = 0.02
    batch_limit: int | None = None
    memory_bound_fraction: float = 0.0
    pipeline_serial_fraction: float = 0.0
    barrier_imbalance: float = 0.0

    def time_at(self, threads: int, machine: MachineModel = MACHINE_A_TOPOLOGY) -> float:
        """Normalized runtime at *threads* (single-thread time = 1.0)."""
        if threads < 1:
            raise SimulationError("need at least one thread")
        usable = threads if self.batch_limit is None else min(threads, self.batch_limit)
        cores = machine.effective_cores(usable)
        parallel = 1.0 - self.serial_fraction

        compute_part = parallel * (1.0 - self.memory_bound_fraction)
        memory_part = parallel * self.memory_bound_fraction
        compute_time = compute_part / cores
        memory_time = memory_part / min(cores, machine.bandwidth_cores)
        parallel_time = compute_time + memory_time

        if self.pipeline_serial_fraction > 0:
            parallel_time = max(parallel_time, self.pipeline_serial_fraction)
        if self.barrier_imbalance > 0 and usable > 1:
            import math

            parallel_time *= 1.0 + self.barrier_imbalance * math.log2(usable)
        return self.serial_fraction + parallel_time

    def speedup_curve(
        self,
        threads: tuple[int, ...] = FIGURE5_THREADS,
        baseline_threads: int = 4,
        machine: MachineModel = MACHINE_A_TOPOLOGY,
    ) -> dict[int, float]:
        """Speedups relative to *baseline_threads* (Figure 5's y-axis)."""
        base = self.time_at(baseline_threads, machine)
        return {t: base / self.time_at(t, machine) for t in threads}


#: Figure 5's workloads with parameters from our measured stage structure
#: (serial fractions are overridable from instrumented runs).
FIGURE5_WORKLOADS: dict[str, WorkloadModel] = {
    "vg_map": WorkloadModel("vg_map", serial_fraction=0.01),
    "giraffe": WorkloadModel("giraffe", serial_fraction=0.02),
    "graphaligner": WorkloadModel("graphaligner", serial_fraction=0.01),
    "minigraph-lr": WorkloadModel("minigraph-lr", serial_fraction=0.01),
    "minigraph-cr": WorkloadModel("minigraph-cr", batch_limit=1),
    "seqwish": WorkloadModel(
        "seqwish",
        serial_fraction=0.10,             # setup + final GFA write
        pipeline_serial_fraction=0.22,    # graph-emission pipeline stage
    ),
    "odgi-layout": WorkloadModel(
        "odgi-layout",
        serial_fraction=0.08,             # sequential path-index build
        memory_bound_fraction=0.6,        # random layout-array access
        barrier_imbalance=0.02,           # 30 iteration barriers
    ),
}


def figure5_table(
    workloads: dict[str, WorkloadModel] | None = None,
) -> dict[str, dict[int, float]]:
    """Speedup-vs-4-threads curves for every Figure 5 workload."""
    workloads = workloads or FIGURE5_WORKLOADS
    return {name: model.speedup_curve() for name, model in workloads.items()}
