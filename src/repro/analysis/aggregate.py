"""Cross-scenario aggregation: sweep results → tables and leaderboards.

The HYMET harness pattern (``aggregate_metrics.py`` walking a CAMI
manifest into ``summary_per_tool_per_sample.tsv`` and
``leaderboard_by_rank.tsv``), re-cut for this suite: a
:class:`~repro.sweep.SweepResult` — one report per kernel × scenario
cell — folds into

* ``summary_per_kernel_per_scenario.tsv`` — one row per (kernel,
  backend, scenario, scale, seed) grid point: wall time, throughput,
  IPC, dominant top-down slot, origin, gate status;
* ``leaderboard_by_metric.tsv`` — per metric (throughput, wall time,
  IPC), (kernel, backend) pairs ranked by their best cell, with the
  cross-scenario mean and relative spread, and a *scenario-sensitive* /
  *scenario-invariant* verdict (the paper's Section V question: which
  kernels' behaviour is a property of the kernel, and which of the
  workload).  Ranking per (kernel, backend) is what lets a sweep with a
  backend axis rank execution backends per scenario;

plus JSON twins of both (``.json`` next to each ``.tsv``).
:func:`topdown_drift` answers the shape question directly: kernels
whose *dominant* top-down slot changes across scenarios.

Everything here is pure post-processing — no kernel runs, no file
reads beyond the sweep result handed in — so it aggregates saved
``sweep.json`` files from past runs just as well as fresh in-memory
results (``repro sweep report``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.errors import SweepError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sweep.driver import CellResult, SweepResult

#: Leaderboard metrics: name -> (extractor description, higher_is_better).
LEADERBOARD_METRICS: dict[str, bool] = {
    "throughput": True,
    "wall_seconds": False,
    "ipc": True,
}

#: Relative spread past which a kernel's metric is called
#: scenario-sensitive: (max - min) / mean over per-scenario means.
SENSITIVITY_THRESHOLD = 0.25

SUMMARY_TSV = "summary_per_kernel_per_scenario.tsv"
LEADERBOARD_TSV = "leaderboard_by_metric.tsv"

SUMMARY_COLUMNS = (
    "kernel", "backend", "scenario", "scale", "seed", "fidelity",
    "origin", "wall_seconds", "throughput", "ipc", "top_slot", "gates",
    "error",
)

LEADERBOARD_COLUMNS = (
    "metric", "rank", "kernel", "backend", "best", "best_scenario",
    "mean", "spread", "scenarios", "verdict",
)


def _backend_of(result: "CellResult") -> str:
    """The cell's execution backend (``-`` for pre-backend sweeps)."""
    return result.backend or result.report.backend or "-"


@dataclass(frozen=True)
class SummaryRow:
    """One grid point of the summary table."""

    kernel: str
    backend: str
    scenario: str
    scale: float
    seed: int
    fidelity: str
    origin: str
    wall_seconds: float
    throughput: float
    ipc: float
    top_slot: str
    gates: str
    error: str

    def as_record(self) -> dict:
        return {column: getattr(self, column) for column in SUMMARY_COLUMNS}


@dataclass(frozen=True)
class LeaderboardEntry:
    """One (kernel, backend) pair's standing under one metric."""

    metric: str
    rank: int
    kernel: str
    backend: str
    best: float
    best_scenario: str
    mean: float
    spread: float
    scenarios: int
    verdict: str

    def as_record(self) -> dict:
        return {column: getattr(self, column)
                for column in LEADERBOARD_COLUMNS}


def _throughput(result: "CellResult") -> float:
    report = result.report
    if report.wall_seconds <= 0:
        return 0.0
    return report.inputs_processed / report.wall_seconds


def _metric_value(result: "CellResult", metric: str) -> "float | None":
    """The metric's value for one grid point, ``None`` when unmeasured.

    IPC comes from the ``topdown`` study; a grid point that ran without
    it reports ``ipc == 0.0``, which is *missing*, not a measurement —
    folding it in would make every partially-instrumented sweep look
    maximally scenario-sensitive.
    """
    if metric == "throughput":
        return _throughput(result)
    if metric == "wall_seconds":
        return result.report.wall_seconds
    if metric == "ipc":
        return result.report.ipc if result.report.ipc > 0 else None
    raise SweepError(
        f"unknown leaderboard metric {metric!r}; known: "
        f"{', '.join(sorted(LEADERBOARD_METRICS))}"
    )


def summary_rows(sweep: "SweepResult") -> list[SummaryRow]:
    """One row per grid point, sorted (kernel, backend, scenario,
    scale, seed)."""
    rows = []
    for result in sweep.results:
        report = result.report
        top_slot = (max(report.topdown, key=report.topdown.get)
                    if report.topdown else "-")
        gates = ("; ".join(result.gate_violations)
                 if result.gate_violations else "ok")
        rows.append(SummaryRow(
            kernel=result.kernel,
            backend=_backend_of(result),
            scenario=result.scenario,
            scale=result.scale,
            seed=result.seed,
            fidelity=result.fidelity,
            origin=result.origin,
            wall_seconds=report.wall_seconds,
            throughput=_throughput(result),
            ipc=report.ipc,
            top_slot=top_slot,
            gates=gates,
            error=report.error or "-",
        ))
    rows.sort(key=lambda row: (row.kernel, row.backend, row.scenario,
                               row.scale, row.seed))
    return rows


def _scenario_means(
    sweep: "SweepResult", metric: str,
) -> "dict[tuple[str, str], dict[str, float]]":
    """(kernel, backend) -> scenario -> mean metric over that cell's
    grid points.

    Failed cells (``report.error`` set) and unmeasured values are
    excluded: a crashed kernel's zero wall time must not win a
    leaderboard, and a study that never ran is not a data point.
    Grouping by backend keeps a scalar oracle's wall time from
    dragging down the vectorized kernel's mean — each execution
    variant competes as its own contender.
    """
    sums: dict[tuple[str, str], dict[str, list[float]]] = {}
    for result in sweep.results:
        if result.report.error is not None:
            continue
        value = _metric_value(result, metric)
        if value is None:
            continue
        per_kernel = sums.setdefault(
            (result.kernel, _backend_of(result)), {})
        per_kernel.setdefault(result.scenario, []).append(value)
    return {
        contender: {
            scenario: sum(values) / len(values)
            for scenario, values in scenarios.items()
        }
        for contender, scenarios in sums.items()
    }


def leaderboard(sweep: "SweepResult",
                metrics: "Iterable[str] | None" = None
                ) -> list[LeaderboardEntry]:
    """(kernel, backend) pairs ranked per metric by their best
    scenario cell — a sweep with a backend axis thereby ranks
    execution backends per scenario.

    ``spread`` is the relative spread of the per-scenario means,
    ``(max - min) / |mean|``; past :data:`SENSITIVITY_THRESHOLD` the
    verdict is ``scenario-sensitive``, otherwise ``scenario-invariant``
    (``single-scenario`` when only one scenario contributed).
    """
    entries = []
    for metric in (metrics if metrics is not None
                   else sorted(LEADERBOARD_METRICS)):
        higher_is_better = LEADERBOARD_METRICS.get(metric)
        if higher_is_better is None:
            raise SweepError(
                f"unknown leaderboard metric {metric!r}; known: "
                f"{', '.join(sorted(LEADERBOARD_METRICS))}"
            )
        standings = []
        for (kernel, backend), per_scenario in _scenario_means(
                sweep, metric).items():
            pick = max if higher_is_better else min
            best_scenario = pick(per_scenario, key=per_scenario.get)
            values = list(per_scenario.values())
            mean = sum(values) / len(values)
            spread = ((max(values) - min(values)) / abs(mean)
                      if mean else 0.0)
            if len(values) == 1:
                verdict = "single-scenario"
            elif spread > SENSITIVITY_THRESHOLD:
                verdict = "scenario-sensitive"
            else:
                verdict = "scenario-invariant"
            standings.append((per_scenario[best_scenario], best_scenario,
                              kernel, backend, mean, spread, len(values),
                              verdict))
        standings.sort(
            key=lambda item: (-item[0] if higher_is_better else item[0],
                              item[2], item[3])
        )
        for rank, (best, best_scenario, kernel, backend, mean, spread,
                   scenarios, verdict) in enumerate(standings, start=1):
            entries.append(LeaderboardEntry(
                metric=metric, rank=rank, kernel=kernel, backend=backend,
                best=best, best_scenario=best_scenario, mean=mean,
                spread=spread, scenarios=scenarios, verdict=verdict,
            ))
    return entries


def topdown_drift(sweep: "SweepResult") -> dict[str, dict[str, str]]:
    """Kernels whose *dominant* top-down slot changes across scenarios.

    Returns ``{kernel: {scenario: top_slot}}`` for drifting kernels
    only — empty means every kernel's bottleneck shape is
    scenario-invariant (the paper characterizes on one workload; drift
    here flags where that single-workload shape would mislead).
    """
    slots: dict[str, dict[str, str]] = {}
    for result in sweep.results:
        report = result.report
        if report.error is not None or not report.topdown:
            continue
        top = max(report.topdown, key=report.topdown.get)
        slots.setdefault(result.kernel, {})[result.scenario] = top
    return {
        kernel: per_scenario
        for kernel, per_scenario in slots.items()
        if len(set(per_scenario.values())) > 1
    }


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _write_tsv(path: Path, columns: tuple[str, ...],
               records: list[dict]) -> None:
    lines = ["\t".join(columns)]
    for record in records:
        lines.append("\t".join(_format(record[column])
                               for column in columns))
    path.write_text("\n".join(lines) + "\n")


def _write_json(path: Path, records: list[dict]) -> None:
    path.write_text(json.dumps(records, indent=2, sort_keys=True))


def aggregate_sweep(sweep: "SweepResult",
                    out_dir: "str | Path") -> dict[str, Path]:
    """Write the summary table and leaderboard (TSV + JSON) under
    *out_dir*; returns ``{artifact name: path}``."""
    if not sweep.results:
        raise SweepError("cannot aggregate an empty sweep result")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    summary_records = [row.as_record() for row in summary_rows(sweep)]
    board_records = [entry.as_record() for entry in leaderboard(sweep)]
    paths = {
        SUMMARY_TSV: out / SUMMARY_TSV,
        LEADERBOARD_TSV: out / LEADERBOARD_TSV,
        "summary_per_kernel_per_scenario.json":
            out / "summary_per_kernel_per_scenario.json",
        "leaderboard_by_metric.json": out / "leaderboard_by_metric.json",
    }
    _write_tsv(paths[SUMMARY_TSV], SUMMARY_COLUMNS, summary_records)
    _write_tsv(paths[LEADERBOARD_TSV], LEADERBOARD_COLUMNS, board_records)
    _write_json(paths["summary_per_kernel_per_scenario.json"],
                summary_records)
    _write_json(paths["leaderboard_by_metric.json"], board_records)
    return paths


def render_leaderboard(entries: list[LeaderboardEntry],
                       title: "str | None" = None) -> str:
    """The leaderboard as an aligned text table (the CLI's view)."""
    from repro.analysis.report import render_table

    rows = [
        [entry.metric, entry.rank, entry.kernel, entry.backend,
         f"{entry.best:.4g}", entry.best_scenario, f"{entry.mean:.4g}",
         f"{entry.spread:.3f}", entry.scenarios, entry.verdict]
        for entry in entries
    ]
    return render_table(list(LEADERBOARD_COLUMNS), rows, title=title)
