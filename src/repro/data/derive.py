"""The derivation registry: named corpus -> kernel-input transforms.

The paper produces each kernel's dataset by running its parent tool "up
until the kernel" and dumping the boundary inputs.  A *derivation* is
that dump step as a first-class, cacheable object: a registered function
from the shared :class:`~repro.data.corpus.SuiteData` (plus parameters)
to the kernel's prepared inputs.  The artifact store caches derivation
outputs on disk next to the corpus they derive from, keyed by
``(spec digest, derivation name, params, derivation version)`` — so a
warm run's ``prepare`` collapses to deserialization for every kernel,
not just the corpus.

Kernel modules register their extractor at import time::

    @derivation("gssw_inputs")
    def _gssw_inputs(data, spec):
        return extract_gssw_inputs(data.graph, list(data.short_reads))

Bump ``version=`` when a derivation's output for unchanged inputs
changes; stale artifacts then miss (and ``repro data gc`` removes them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import DatasetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.corpus import SuiteData
    from repro.data.spec import DatasetSpec


@dataclass(frozen=True)
class Derivation:
    """One registered corpus -> kernel-input transform."""

    name: str
    fn: Callable[..., object]
    version: int = 1
    #: ``False`` for generators independent of the corpus (e.g. TSU's
    #: synthetic pairs): the store then skips building the corpus and
    #: passes ``data=None``.
    needs_corpus: bool = True

    def build(self, data: "SuiteData | None", spec: "DatasetSpec",
              **params: object) -> object:
        return self.fn(data, spec, **params)


#: name -> Derivation.
DERIVATIONS: dict[str, Derivation] = {}


def derivation(name: str, version: int = 1, needs_corpus: bool = True):
    """Decorator registering ``fn(data, spec, **params)`` under *name*."""

    def decorate(fn: Callable[..., object]) -> Callable[..., object]:
        if name in DERIVATIONS:
            raise DatasetError(f"duplicate derivation name {name!r}")
        DERIVATIONS[name] = Derivation(
            name=name, fn=fn, version=version, needs_corpus=needs_corpus
        )
        return fn

    return decorate


def get_derivation(name: str) -> Derivation:
    """Look up a registered derivation by name."""
    try:
        return DERIVATIONS[name]
    except KeyError:
        known = ", ".join(sorted(DERIVATIONS))
        raise DatasetError(
            f"unknown derivation {name!r}; known: {known}"
        ) from None
