"""The shared on-disk artifact store for suite datasets.

Content-addressed corpus cache under ``benchmarks/datasets/`` (override
with ``$REPRO_DATA_DIR`` or the ``root`` argument), keyed by
:meth:`DatasetSpec.digest` — which folds in every corpus parameter plus
:data:`~repro.data.spec.GENERATOR_VERSION`.  Layout::

    benchmarks/datasets/
        <spec-digest>/
            meta.json             # spec key, fingerprint, sizes
            corpus.pkl            # pickled SuiteData
            derived/
                <name>-<digest>.pkl   # pickled derivation outputs
                <name>-<digest>.json  # derivation meta sidecar
        <spec-digest>.lock        # flock target for build-once

Three-level resolution, cheapest first:

1. **memory** — a :class:`weakref.WeakValueDictionary` of holder objects
   plus a small strong ring of the most recent entries.  Unlike the old
   ``lru_cache(maxsize=4)`` this never pins a corpus for process
   lifetime: once an entry leaves the ring, the collector may reclaim
   it (a scale sweep no longer accumulates resident corpora).
2. **disk** — pickles written atomically (temp file + rename), so
   readers never observe partial artifacts and a warm ``prepare``
   collapses to deserialization time.
3. **build** — under an exclusive ``flock`` with a double-check after
   acquisition, so N concurrent executor workers build a missing corpus
   exactly once and share the result through the filesystem.

Every resolution is observable: ``data.store.hits{level=,kind=}`` /
``data.store.builds{kind=,scenario=}`` counters, a
``data.build_seconds{scenario=}`` gauge, and ``data/{load,build}/...``
spans nested inside the owning kernel's ``prepare`` span.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
import weakref
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

try:  # pragma: no cover - platform guard
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.data.corpus import SuiteData, build_corpus, corpus_fingerprint
from repro.data.derive import get_derivation
from repro.data.spec import GENERATOR_VERSION, DatasetSpec
from repro.obs import metrics, trace

#: Resolution origins reported by :meth:`ArtifactStore.fetch`.
MEMORY, DISK, BUILT = "memory", "disk", "built"


def default_data_dir() -> Path:
    """``$REPRO_DATA_DIR`` or ``<repo>/benchmarks/datasets``."""
    override = os.environ.get("REPRO_DATA_DIR")
    if override:
        return Path(override)
    # store.py -> data -> repro -> src -> repository root
    return Path(__file__).parents[3] / "benchmarks" / "datasets"


class _Artifact:
    """Weak-referenceable holder (lists and tuples aren't)."""

    __slots__ = ("value", "__weakref__")

    def __init__(self, value: object) -> None:
        self.value = value


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _derived_digest(spec: DatasetSpec, name: str, version: int,
                    params: dict) -> str:
    import hashlib

    payload = {
        "spec": spec.digest(),
        "derivation": name,
        "version": version,
        "generator_version": GENERATOR_VERSION,
        "params": params,
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:16]


@contextmanager
def _locked(path: Path) -> Iterator[None]:
    """Hold an exclusive advisory lock on *path* (created if absent)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = os.open(path, os.O_CREAT | os.O_RDWR)
    try:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_EX)
        yield
    finally:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_UN)
        os.close(handle)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write *payload* so concurrent readers see all of it or nothing."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name + ".tmp")
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ArtifactStore:
    """Build-once, share-everywhere cache of corpora and derived inputs.

    ``memory_slots`` bounds the strong in-memory ring (the evictable
    replacement for the old unbounded-lifetime ``lru_cache``).
    """

    def __init__(self, root: str | Path | None = None,
                 memory_slots: int = 4) -> None:
        self.root = Path(root) if root is not None else default_data_dir()
        self._memory: weakref.WeakValueDictionary[str, _Artifact] = (
            weakref.WeakValueDictionary()
        )
        self._recent: deque[_Artifact] = deque(maxlen=max(1, memory_slots))

    # -- paths ---------------------------------------------------------

    def corpus_dir(self, spec: DatasetSpec) -> Path:
        return self.root / spec.digest()

    def corpus_path(self, spec: DatasetSpec) -> Path:
        return self.corpus_dir(spec) / "corpus.pkl"

    def _lock_path(self, spec: DatasetSpec) -> Path:
        return self.root / f"{spec.digest()}.lock"

    # -- memory layer --------------------------------------------------

    def _remember(self, key: str, value: object) -> None:
        holder = _Artifact(value)
        self._memory[key] = holder
        self._recent.append(holder)

    def _recall(self, key: str) -> object | None:
        holder = self._memory.get(key)
        if holder is None:
            return None
        self._recent.append(holder)  # refresh recency
        return holder.value

    def evict_memory(self) -> None:
        """Drop every in-memory entry (disk artifacts stay)."""
        self._recent.clear()
        self._memory.clear()

    # -- corpus --------------------------------------------------------

    def corpus(self, spec: DatasetSpec) -> SuiteData:
        """The corpus for *spec*: memory, then disk, then build-once."""
        data, _origin = self.fetch(spec)
        return data

    def fetch(self, spec: DatasetSpec) -> tuple[SuiteData, str]:
        """Like :meth:`corpus` but also reports where the data came from
        (``"memory"`` / ``"disk"`` / ``"built"``)."""
        key = f"corpus/{spec.digest()}"
        cached = self._recall(key)
        if cached is not None:
            self._count_hit(MEMORY, "corpus", spec)
            return cached, MEMORY

        with trace.timed_span(f"data/load/corpus/{spec.scenario}"):
            loaded = self._load_pickle(self.corpus_path(spec))
        if loaded is not None:
            self._remember(key, loaded)
            self._count_hit(DISK, "corpus", spec)
            return loaded, DISK

        with _locked(self._lock_path(spec)):
            # Double-check: another process may have built while we
            # waited on the lock.
            loaded = self._load_pickle(self.corpus_path(spec))
            if loaded is not None:
                self._remember(key, loaded)
                self._count_hit(DISK, "corpus", spec)
                return loaded, DISK
            with trace.timed_span(f"data/build/corpus/{spec.scenario}") as span:
                data = build_corpus(spec)
                self._write_corpus(spec, data)
            metrics.counter("data.store.builds", kind="corpus",
                            scenario=spec.scenario).inc()
            metrics.gauge("data.build_seconds",
                          scenario=spec.scenario).set(span.duration)
        self._remember(key, data)
        return data, BUILT

    def _write_corpus(self, spec: DatasetSpec, data: SuiteData) -> None:
        payload = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write_bytes(self.corpus_path(spec), payload)
        meta = {
            "spec": spec.key(),
            "digest": spec.digest(),
            "fingerprint": corpus_fingerprint(data),
            "generator_version": GENERATOR_VERSION,
            "created": time.time(),
            "corpus_bytes": len(payload),
        }
        _atomic_write_bytes(self.corpus_dir(spec) / "meta.json",
                            json.dumps(meta, indent=2, sort_keys=True).encode())

    # -- derived inputs ------------------------------------------------

    def derived(self, spec: DatasetSpec, name: str, **params: object) -> object:
        """A derivation's output for *spec*: memory / disk / build-once.

        The derivation must be registered (:mod:`repro.data.derive`);
        building it builds the corpus first unless the derivation
        declares ``needs_corpus=False``.
        """
        value, _origin = self.fetch_derived(spec, name, **params)
        return value

    def fetch_derived(self, spec: DatasetSpec, name: str,
                      **params: object) -> tuple[object, str]:
        step = get_derivation(name)
        digest = _derived_digest(spec, name, step.version, params)
        key = f"derived/{digest}"
        cached = self._recall(key)
        if cached is not None:
            self._count_hit(MEMORY, "derived", spec)
            return cached, MEMORY

        path = self.corpus_dir(spec) / "derived" / f"{name}-{digest}.pkl"
        with trace.timed_span(f"data/load/derived/{name}"):
            loaded = self._load_pickle(path)
        if loaded is not None:
            self._remember(key, loaded)
            self._count_hit(DISK, "derived", spec)
            return loaded, DISK

        # Resolve the corpus *before* taking the spec lock: corpus
        # resolution locks the same file, and a second flock on a fresh
        # descriptor would deadlock against our own held lock.
        data = self.corpus(spec) if step.needs_corpus else None
        with _locked(self._lock_path(spec)):
            loaded = self._load_pickle(path)
            if loaded is not None:
                self._remember(key, loaded)
                self._count_hit(DISK, "derived", spec)
                return loaded, DISK
            with trace.timed_span(f"data/build/derived/{name}"):
                value = step.build(data, spec, **params)
                _atomic_write_bytes(
                    path, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                )
                _atomic_write_bytes(
                    path.with_suffix(".json"),
                    json.dumps(
                        {"derivation": name, "version": step.version,
                         "params": {k: repr(v) for k, v in params.items()},
                         "created": time.time()},
                        indent=2, sort_keys=True,
                    ).encode(),
                )
            metrics.counter("data.store.builds", kind="derived",
                            scenario=spec.scenario).inc()
        self._remember(key, value)
        return value, BUILT

    # -- shared plumbing -----------------------------------------------

    @staticmethod
    def _count_hit(level: str, kind: str, spec: DatasetSpec) -> None:
        metrics.counter("data.store.hits", level=level, kind=kind,
                        scenario=spec.scenario).inc()

    @staticmethod
    def _load_pickle(path: Path) -> object | None:
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        try:
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any corruption is a miss
            return None

    # -- maintenance (repro data {list,build,gc}) ----------------------

    def entries(self) -> list[dict]:
        """Metadata for every corpus on disk (sorted by scenario/axes)."""
        found = []
        if not self.root.is_dir():
            return found
        for meta_path in sorted(self.root.glob("*/meta.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                continue
            derived_dir = meta_path.parent / "derived"
            meta["derived_count"] = (
                len(list(derived_dir.glob("*.pkl"))) if derived_dir.is_dir()
                else 0
            )
            meta["disk_bytes"] = sum(
                entry.stat().st_size
                for entry in meta_path.parent.rglob("*") if entry.is_file()
            )
            found.append(meta)
        found.sort(key=lambda m: (m.get("spec", {}).get("scenario", ""),
                                  m.get("spec", {}).get("scale", 0),
                                  m.get("spec", {}).get("seed", 0)))
        return found

    def gc(self, everything: bool = False) -> tuple[int, int]:
        """Remove stale artifacts; returns ``(entries, bytes)`` removed.

        Default: entries written by a different
        :data:`GENERATOR_VERSION` (unreachable — their digests can never
        match a current spec).  ``everything=True`` clears the store.
        """
        import shutil

        removed = freed = 0
        if not self.root.is_dir():
            return removed, freed
        for entry in list(self.root.iterdir()):
            if entry.suffix == ".lock":
                continue
            if not entry.is_dir():
                continue
            meta_path = entry / "meta.json"
            stale = everything
            if not stale:
                try:
                    meta = json.loads(meta_path.read_text())
                    stale = meta.get("generator_version") != GENERATOR_VERSION
                except (OSError, ValueError):
                    stale = True  # unreadable meta: never servable
            if stale:
                freed += sum(p.stat().st_size
                             for p in entry.rglob("*") if p.is_file())
                shutil.rmtree(entry)
                lock = self.root / f"{entry.name}.lock"
                lock.unlink(missing_ok=True)
                removed += 1
        self.evict_memory()
        return removed, freed


#: The process-wide store the kernels and the compat shim resolve
#: against; swap with :func:`use_store` (tests) or :func:`set_default_store`.
_DEFAULT_STORE: ArtifactStore | None = None


def default_store() -> ArtifactStore:
    """The shared process-wide :class:`ArtifactStore` (created lazily)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore()
    return _DEFAULT_STORE


def set_default_store(store: ArtifactStore | None) -> None:
    """Install *store* as the process-wide default (``None`` resets)."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


@contextmanager
def use_store(store: ArtifactStore) -> Iterator[ArtifactStore]:
    """Temporarily install *store* as the default (test isolation)."""
    previous = _DEFAULT_STORE
    set_default_store(store)
    try:
        yield store
    finally:
        set_default_store(previous)


def ensure_corpus(spec: DatasetSpec,
                  store: ArtifactStore | None = None) -> tuple[SuiteData, str]:
    """Pre-build (or load) the corpus for *spec*; returns data + origin.

    The executor calls this before dispatching workers so dataset
    construction happens once up front instead of racing inside the
    worker pool's ``prepare`` hot path.
    """
    return (store or default_store()).fetch(spec)
