"""Streaming execution mode: bounded-memory derived inputs.

At large scale the derived kernel inputs — not the corpus — dominate
memory: GSSW materializes one subgraph per read, TSU one synthetic pair
per item, GBWT thousands of query tuples.  ``repro run --stream``
activates this module's context, and the kernels that own those inputs
swap their monolithic derivation for a :class:`ChunkedSeries`: a lazy,
re-iterable view that resolves fixed-size *chunks* through the
:class:`~repro.data.store.ArtifactStore` on demand.

Memory stays bounded by construction: the store's strong in-memory ring
holds only the few most recent chunks (older ones fall back to their
disk pickles), so peak residency is ``O(chunk)`` instead of
``O(dataset)`` regardless of scale.  Results stay *identical* by
construction too: chunk generators are range-parameterized over the same
per-item RNG substreams as their monolithic counterparts, so the
concatenation of chunks equals the full derivation element for element
— reports from a streaming run match the in-memory run bit for bit.

Chunk fetches happen while a kernel iterates, i.e. inside its
``prepare``/``execute`` span — the store's ``data/load``/``data/build``
spans nest inside the owning kernel span, keeping the attribution
sum-exactness invariant intact.
"""

from __future__ import annotations

import bisect
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.spec import DatasetSpec

#: Default items per chunk; ``REPRO_STREAM_CHUNK`` overrides.
DEFAULT_CHUNK_ITEMS = 64


@dataclass(frozen=True)
class StreamingConfig:
    """Active streaming parameters (one per :func:`streaming` scope)."""

    chunk_items: int = DEFAULT_CHUNK_ITEMS


_ACTIVE: StreamingConfig | None = None


def streaming_config() -> StreamingConfig | None:
    """The active :class:`StreamingConfig`, or ``None`` when kernels
    should materialize their inputs in memory (the default)."""
    return _ACTIVE


def _default_chunk_items() -> int:
    raw = os.environ.get("REPRO_STREAM_CHUNK", "")
    try:
        value = int(raw) if raw else DEFAULT_CHUNK_ITEMS
    except ValueError:
        return DEFAULT_CHUNK_ITEMS
    return max(1, value)


@contextmanager
def streaming(chunk_items: int | None = None) -> Iterator[StreamingConfig]:
    """Activate streaming mode for the dynamic extent of the block."""
    global _ACTIVE
    config = StreamingConfig(
        chunk_items=chunk_items if chunk_items else _default_chunk_items()
    )
    previous = _ACTIVE
    _ACTIVE = config
    try:
        yield config
    finally:
        _ACTIVE = previous


@contextmanager
def streaming_mode(enabled: bool) -> Iterator[None]:
    """:func:`streaming` gated on a flag (executor convenience)."""
    if enabled:
        with streaming():
            yield
    else:
        yield


class ChunkedSeries:
    """A lazy, re-iterable sequence backed by chunked store derivations.

    ``name`` must be a registered derivation taking ``start``/``stop``
    item indices (plus ``params``) and returning the list of items for
    that range.  ``total`` is the number of *generator* indices; chunks
    may filter items, so ``len(self)`` counts what the chunks actually
    yield (computed with one bounded pass, then cached).

    Supports ``len``/``bool``/iteration/indexing — enough to stand in
    for the materialized list in every kernel path, including
    ``random.sample`` in validators.
    """

    def __init__(self, spec: "DatasetSpec", name: str, total: int,
                 chunk_items: int, params: dict | None = None) -> None:
        if chunk_items < 1:
            raise ValueError("chunk_items must be >= 1")
        self.spec = spec
        self.name = name
        self.total = total
        self.chunk_items = chunk_items
        self.params = dict(params or {})
        self._ends: list[int] | None = None  # cumulative yielded counts

    # -- chunk plumbing ------------------------------------------------

    def _ranges(self) -> list[tuple[int, int]]:
        return [
            (start, min(start + self.chunk_items, self.total))
            for start in range(0, self.total, self.chunk_items)
        ]

    def _fetch(self, start: int, stop: int) -> list:
        from repro.data.store import default_store

        return default_store().derived(
            self.spec, self.name, start=start, stop=stop, **self.params
        )

    def _chunk_ends(self) -> list[int]:
        """Cumulative item counts per chunk (one streaming pass)."""
        if self._ends is None:
            ends: list[int] = []
            count = 0
            for start, stop in self._ranges():
                count += len(self._fetch(start, stop))
                ends.append(count)
            self._ends = ends
        return self._ends

    # -- sequence protocol ---------------------------------------------

    def __iter__(self) -> Iterator:
        for start, stop in self._ranges():
            yield from self._fetch(start, stop)

    def __len__(self) -> int:
        ends = self._chunk_ends()
        return ends[-1] if ends else 0

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(self, index: int):
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("ChunkedSeries index out of range")
        ends = self._chunk_ends()
        chunk = bisect.bisect_right(ends, index)
        start, stop = self._ranges()[chunk]
        offset = index - (ends[chunk - 1] if chunk else 0)
        return self._fetch(start, stop)[offset]
