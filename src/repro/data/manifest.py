"""Declarative scenario manifests: axes, cross-products, named cells.

The registry in :mod:`repro.data.scenarios` used to be five hand-written
``register_scenario`` calls; a production matrix needs hundreds of
corpora, which nobody should enumerate by hand.  A *manifest* is a TOML
file (committed under ``benchmarks/manifests/``) that describes corpus
**axes** — population size, divergence, SV spectrum, read profile —
whose cross-product expands into one :class:`ManifestCell` (and thus one
content-hashed :class:`~repro.data.spec.DatasetSpec`) per combination,
plus optional explicitly-named **cells** (the legacy registry form).
The shape follows HYMET's ``cami_manifest.tsv``: a declarative sample
grid expanded by code, never duplicated into it.

Format::

    [manifest]
    name = "matrix"
    description = "..."
    axis_order = ["population", "divergence"]   # optional; default sorted

    [axes.population.pop8]          # baseline level: no overrides
    fidelity = "paper"              # cell is paper-grade iff every level is
    [axes.population.pop16]
    n_haplotypes = 16               # DatasetSpec field overrides, inline

    [axes.divergence.div1x]
    fidelity = "paper"
    [axes.divergence.div2x]
    rate_scale = {snp = 2.0}        # multiplies the base VariantRates
    rates = {sv_mean_length = 240.0}  # absolute VariantRates overrides

    [cells.default]                 # explicit cell, same vocabulary
    description = "the paper's shared corpus"
    fidelity = "paper"

Grid cells are named by joining their level names in axis order
(``pop16-div2x``).  Expansion is deterministic and order-independent:
axes iterate in ``axis_order`` (or sorted) regardless of TOML table
order, so the same manifest always yields the same cell-name and
spec-digest sets.  Conflicting overrides (two axes setting one field)
and duplicate cell names raise :class:`~repro.errors.ManifestError`
at parse time — a manifest either expands cleanly or not at all.

``fidelity = "paper"`` flags cells the paper-shape gates
(:mod:`repro.sweep.gates`) are asserted on during sweeps, so scenario
growth can't silently break fidelity; everything else defaults to
``"bench"`` (run, aggregate, but don't gate).
"""

from __future__ import annotations

import os
import tomllib
from dataclasses import dataclass, fields, replace
from itertools import product
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ManifestError
from repro.sequence.mutate import VariantRates
from repro.data.spec import SUITE_RATES, DatasetSpec

#: Cell fidelity grades.  ``paper`` cells get the paper-shape gates
#: asserted on every sweep; ``bench`` cells only run and aggregate.
FIDELITY_PAPER, FIDELITY_BENCH = "paper", "bench"
_FIDELITIES = (FIDELITY_PAPER, FIDELITY_BENCH)

#: DatasetSpec fields a manifest may override directly (everything that
#: shapes corpus content except the per-run axes and the rates bundle,
#: which has its own ``rates`` / ``rate_scale`` vocabulary).
SPEC_FIELDS = frozenset(
    f.name for f in fields(DatasetSpec)
    if f.name not in ("scenario", "scale", "seed", "rates")
)

#: VariantRates fields addressable from ``rates`` / ``rate_scale``.
RATE_FIELDS = frozenset(f.name for f in fields(VariantRates))

#: Keys with meaning to the manifest itself, not the spec.
_META_KEYS = frozenset({"description", "fidelity", "rates", "rate_scale"})


@dataclass(frozen=True)
class ManifestCell:
    """One expanded corpus: a named override bundle plus metadata.

    ``axes`` records which level of each axis produced a grid cell
    (empty for explicit cells); ``overrides`` are ready-to-apply
    :class:`DatasetSpec` keyword arguments (``rates`` already folded
    into a :class:`VariantRates`).
    """

    name: str
    description: str = ""
    overrides: Mapping = None  # type: ignore[assignment]
    fidelity: str = FIDELITY_BENCH
    axes: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.overrides is None:
            object.__setattr__(self, "overrides", {})

    def spec(self, scale: float = 1.0, seed: int = 0) -> DatasetSpec:
        """The cell's :class:`DatasetSpec` at the given run axes."""
        return DatasetSpec(scenario=self.name, scale=scale, seed=seed,
                           **self.overrides)

    def digest(self) -> str:
        """Content digest of the cell's corpus at the default run axes."""
        return self.spec().digest()


@dataclass(frozen=True)
class Manifest:
    """A parsed, validated, fully-expanded scenario manifest."""

    name: str
    description: str
    #: axis name -> level names, in expansion (naming) order.
    axes: tuple[tuple[str, tuple[str, ...]], ...]
    #: every cell, grid cells first (expansion order) then explicit.
    cells: tuple[ManifestCell, ...]
    source: str = ""

    def __len__(self) -> int:
        return len(self.cells)

    def cell_names(self) -> tuple[str, ...]:
        return tuple(cell.name for cell in self.cells)

    def cell(self, name: str) -> ManifestCell:
        for cell in self.cells:
            if cell.name == name:
                return cell
        known = ", ".join(sorted(self.cell_names()))
        raise ManifestError(
            f"manifest {self.name!r} has no cell {name!r}; known: {known}"
        )

    def paper_cells(self) -> tuple[ManifestCell, ...]:
        """Cells whose paper-shape fidelity is gated during sweeps."""
        return tuple(c for c in self.cells if c.fidelity == FIDELITY_PAPER)

    def digest_set(self) -> frozenset[str]:
        """The spec digests of every cell — the manifest's content
        identity (order-independent by construction)."""
        return frozenset(cell.digest() for cell in self.cells)


# -- parsing ----------------------------------------------------------


def _require_table(payload, context: str) -> dict:
    if not isinstance(payload, dict):
        raise ManifestError(f"{context} must be a table, got "
                            f"{type(payload).__name__}")
    return payload


@dataclass(frozen=True)
class _Level:
    """One parsed axis level (or explicit cell body)."""

    fields: Mapping[str, object]          # direct DatasetSpec overrides
    rates: Mapping[str, float]            # absolute VariantRates fields
    rate_scale: Mapping[str, float]       # multiplicative VariantRates
    description: str
    fidelity: str


def _parse_level(payload: dict, context: str) -> _Level:
    """Validate one level/cell table against the override vocabulary."""
    payload = _require_table(payload, context)
    unknown = set(payload) - SPEC_FIELDS - _META_KEYS
    if unknown:
        allowed = ", ".join(sorted(SPEC_FIELDS | _META_KEYS))
        raise ManifestError(
            f"{context}: unknown key(s) {', '.join(sorted(unknown))}; "
            f"allowed: {allowed}"
        )
    fidelity = payload.get("fidelity", FIDELITY_BENCH)
    if fidelity not in _FIDELITIES:
        raise ManifestError(
            f"{context}: fidelity must be one of {', '.join(_FIDELITIES)}, "
            f"got {fidelity!r}"
        )
    for key in ("rates", "rate_scale"):
        table = _require_table(payload.get(key, {}), f"{context}.{key}")
        bad = set(table) - RATE_FIELDS
        if bad:
            raise ManifestError(
                f"{context}.{key}: unknown rate field(s) "
                f"{', '.join(sorted(bad))}; allowed: "
                f"{', '.join(sorted(RATE_FIELDS))}"
            )
        for field, value in table.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ManifestError(
                    f"{context}.{key}.{field} must be a number, "
                    f"got {value!r}"
                )
    return _Level(
        fields={k: v for k, v in payload.items()
                if k in SPEC_FIELDS},
        rates=dict(payload.get("rates", {})),
        rate_scale=dict(payload.get("rate_scale", {})),
        description=str(payload.get("description", "")),
        fidelity=fidelity,
    )


def _merge_levels(parts: Iterable[tuple[str, _Level]], cell: str) -> _Level:
    """Compose the chosen level of every axis into one override bundle.

    Direct fields and absolute rates must come from at most one axis
    (a conflict is a manifest bug, not a precedence question);
    ``rate_scale`` multipliers compose multiplicatively.  A field both
    absolutely set and scaled is ambiguous and rejected.
    """
    fields_src: dict[str, str] = {}
    rates_src: dict[str, str] = {}
    merged_fields: dict[str, object] = {}
    merged_rates: dict[str, float] = {}
    merged_scale: dict[str, float] = {}
    descriptions: list[str] = []
    paper = True
    for axis, level in parts:
        for key, value in level.fields.items():
            if key in fields_src:
                raise ManifestError(
                    f"cell {cell!r}: axes {fields_src[key]!r} and "
                    f"{axis!r} both set {key!r}"
                )
            fields_src[key] = axis
            merged_fields[key] = value
        for key, value in level.rates.items():
            if key in rates_src:
                raise ManifestError(
                    f"cell {cell!r}: axes {rates_src[key]!r} and "
                    f"{axis!r} both set rates.{key}"
                )
            rates_src[key] = axis
            merged_rates[key] = value
        for key, value in level.rate_scale.items():
            merged_scale[key] = merged_scale.get(key, 1.0) * value
        if level.description:
            descriptions.append(level.description)
        paper = paper and level.fidelity == FIDELITY_PAPER
    ambiguous = set(merged_rates) & set(merged_scale)
    if ambiguous:
        raise ManifestError(
            f"cell {cell!r}: rate field(s) "
            f"{', '.join(sorted(ambiguous))} both set absolutely and "
            "scaled — pick one"
        )
    return _Level(
        fields=merged_fields, rates=merged_rates, rate_scale=merged_scale,
        description="; ".join(descriptions),
        fidelity=FIDELITY_PAPER if paper else FIDELITY_BENCH,
    )


def _level_overrides(level: _Level) -> dict:
    """Turn a merged level into :class:`DatasetSpec` keyword overrides,
    folding ``rates``/``rate_scale`` over the suite baseline."""
    overrides = dict(level.fields)
    if level.rates or level.rate_scale:
        rates = replace(SUITE_RATES, **level.rates)
        if level.rate_scale:
            rates = replace(rates, **{
                field: getattr(rates, field) * multiplier
                for field, multiplier in level.rate_scale.items()
            })
        overrides["rates"] = rates
    return overrides


def _make_cell(name: str, level: _Level,
               axes: tuple[tuple[str, str], ...], source: str) -> ManifestCell:
    cell = ManifestCell(
        name=name,
        description=level.description,
        overrides=_level_overrides(level),
        fidelity=level.fidelity,
        axes=axes,
    )
    try:
        cell.spec()  # validate the overrides eagerly, like the registry
    except Exception as error:
        raise ManifestError(
            f"{source}: cell {name!r} expands to an invalid spec: {error}"
        ) from error
    return cell


def parse_manifest(payload: dict, source: str = "<manifest>") -> Manifest:
    """Parse and expand an already-decoded TOML payload."""
    payload = _require_table(payload, source)
    unknown = set(payload) - {"manifest", "axes", "cells"}
    if unknown:
        raise ManifestError(
            f"{source}: unknown section(s) {', '.join(sorted(unknown))}; "
            "allowed: manifest, axes, cells"
        )
    meta = _require_table(payload.get("manifest", {}), f"{source}.manifest")
    name = meta.get("name")
    if not name or not isinstance(name, str):
        raise ManifestError(f"{source}: [manifest] needs a string 'name'")
    description = str(meta.get("description", ""))

    axes_payload = _require_table(payload.get("axes", {}), f"{source}.axes")
    cells_payload = _require_table(payload.get("cells", {}), f"{source}.cells")
    if not axes_payload and not cells_payload:
        raise ManifestError(f"{source}: manifest {name!r} declares neither "
                            "axes nor cells")

    # Canonical axis order: explicit axis_order if given, else sorted —
    # never TOML table order, so expansion is order-independent.
    axis_names = sorted(axes_payload)
    order = meta.get("axis_order")
    if order is not None:
        if sorted(order) != axis_names:
            raise ManifestError(
                f"{source}: axis_order {order!r} must name every axis "
                f"exactly once (axes: {', '.join(axis_names)})"
            )
        axis_names = list(order)

    axes: list[tuple[str, tuple[str, ...]]] = []
    parsed_axes: list[list[tuple[str, str, _Level]]] = []
    for axis in axis_names:
        levels = _require_table(axes_payload[axis], f"{source}.axes.{axis}")
        if not levels:
            raise ManifestError(f"{source}: axis {axis!r} has no levels")
        axes.append((axis, tuple(levels)))
        parsed_axes.append([
            (axis, level_name,
             _parse_level(body, f"{source}.axes.{axis}.{level_name}"))
            for level_name, body in levels.items()
        ])

    cells: list[ManifestCell] = []
    seen: dict[str, str] = {}

    def add(cell: ManifestCell, origin: str) -> None:
        if cell.name in seen:
            raise ManifestError(
                f"{source}: duplicate cell {cell.name!r} "
                f"({seen[cell.name]} vs {origin})"
            )
        seen[cell.name] = origin
        cells.append(cell)

    if parsed_axes:
        for combo in product(*parsed_axes):
            cell_name = "-".join(level_name for _, level_name, _ in combo)
            merged = _merge_levels(
                [(axis, level) for axis, _, level in combo], cell_name
            )
            add(
                _make_cell(
                    cell_name, merged,
                    tuple((axis, level_name) for axis, level_name, _ in combo),
                    source,
                ),
                "grid",
            )

    for cell_name, body in cells_payload.items():
        level = _parse_level(body, f"{source}.cells.{cell_name}")
        add(_make_cell(cell_name, level, (), source), "cells")

    return Manifest(name=name, description=description, axes=tuple(axes),
                    cells=tuple(cells), source=source)


def loads_manifest(text: str, source: str = "<string>") -> Manifest:
    """Parse a manifest from TOML text."""
    try:
        payload = tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ManifestError(f"{source}: invalid TOML: {error}") from error
    return parse_manifest(payload, source=source)


def load_manifest(path: str | Path) -> Manifest:
    """Parse a manifest from a TOML file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ManifestError(f"cannot read manifest {path}: {error}") from error
    return loads_manifest(text, source=str(path))


# -- the committed manifest directory ---------------------------------


def default_manifest_dir() -> Path:
    """``$REPRO_MANIFEST_DIR`` or ``<repo>/benchmarks/manifests``."""
    override = os.environ.get("REPRO_MANIFEST_DIR")
    if override:
        return Path(override)
    # manifest.py -> data -> repro -> src -> repository root
    return Path(__file__).parents[3] / "benchmarks" / "manifests"


def available_manifests() -> tuple[str, ...]:
    """Names of the committed manifests (sorted)."""
    root = default_manifest_dir()
    if not root.is_dir():
        return ()
    return tuple(sorted(p.stem for p in root.glob("*.toml")))


def resolve_manifest(name_or_path: str | Path) -> Manifest:
    """Load a manifest by committed name (``matrix``) or explicit path."""
    candidate = Path(name_or_path)
    if candidate.suffix == ".toml" or candidate.exists():
        return load_manifest(candidate)
    path = default_manifest_dir() / f"{name_or_path}.toml"
    if not path.exists():
        known = ", ".join(available_manifests()) or "(none committed)"
        raise ManifestError(
            f"unknown manifest {name_or_path!r}; known: {known}"
        )
    return load_manifest(path)


#: The manifest the scenario registry itself expands from.
SUITE_MANIFEST = "suite"


def install_manifest(manifest: Manifest | str | Path) -> Manifest:
    """Register every cell of *manifest* as a runtime scenario.

    The scenario registry is the runtime lookup the harness, executor
    and serve layers resolve names through; installing a manifest makes
    its cells addressable (``repro run --scenario pop16-div2x-...``).
    Re-installing is idempotent; a cell whose name collides with a
    differently-parameterized registered scenario raises.
    """
    from repro.data import scenarios

    if not isinstance(manifest, Manifest):
        manifest = resolve_manifest(manifest)
    for cell in manifest.cells:
        existing = scenarios.SCENARIO_REGISTRY.get(cell.name)
        if existing is not None:
            if existing.spec().digest() != cell.digest():
                raise ManifestError(
                    f"manifest {manifest.name!r} cell {cell.name!r} "
                    "collides with an already-registered scenario of "
                    "different content"
                )
            continue
        scenarios.register_scenario(scenarios.Scenario(
            name=cell.name,
            description=cell.description,
            overrides=dict(cell.overrides),
            fidelity=cell.fidelity,
            axes=dict(cell.axes),
        ))
    return manifest
