"""The scenario registry: named corpora the suite can run against.

A *scenario* is a named bundle of :class:`~repro.data.spec.DatasetSpec`
parameter overrides — the graph-variation axes of Figure 11 and of
*The design and construction of reference pangenome graphs* (sample
count and divergence shape the graph) made selectable: ``repro run
--scenario dense-pop`` re-runs any study against a different corpus,
and the scenario name is threaded through :class:`KernelReport`
metadata and the result store's cache key so per-scenario figures never
collide.

Registering a new workload is one :func:`register_scenario` call; the
registry mirrors ``KERNEL_REGISTRY`` / ``STUDY_REGISTRY``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.data.spec import SUITE_RATES, DatasetSpec
from repro.errors import DatasetError


@dataclass(frozen=True)
class Scenario:
    """A named corpus: description plus spec parameter overrides."""

    name: str
    description: str
    overrides: dict = field(default_factory=dict)

    def spec(self, scale: float = 1.0, seed: int = 0) -> DatasetSpec:
        """The scenario's :class:`DatasetSpec` at the given run axes."""
        return DatasetSpec(scenario=self.name, scale=scale, seed=seed,
                           **self.overrides)


#: name -> Scenario, in registration order (display order).
SCENARIO_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry (unique names enforced)."""
    if not scenario.name:
        raise DatasetError("scenario has no name")
    if scenario.name in SCENARIO_REGISTRY:
        raise DatasetError(f"duplicate scenario name {scenario.name!r}")
    scenario.spec()  # validate the overrides eagerly
    SCENARIO_REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        known = ", ".join(SCENARIO_REGISTRY)
        raise DatasetError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, in registration order."""
    return tuple(SCENARIO_REGISTRY)


def scenario_spec(name: str, scale: float = 1.0, seed: int = 0) -> DatasetSpec:
    """The :class:`DatasetSpec` for a registered scenario."""
    return get_scenario(name).spec(scale=scale, seed=seed)


register_scenario(Scenario(
    "default",
    "the paper's shared corpus: 8 haplotypes at human-like divergence",
))

register_scenario(Scenario(
    "dense-pop",
    "high haplotype count (16 samples): denser bubbles, bigger GBWT",
    {"n_haplotypes": 16},
))

register_scenario(Scenario(
    "divergent",
    "2x SNP/indel rates: more variant sites, shorter graph nodes",
    {
        "rates": replace(SUITE_RATES,
                         snp=SUITE_RATES.snp * 2.0,
                         insertion=SUITE_RATES.insertion * 2.0,
                         deletion=SUITE_RATES.deletion * 2.0),
        "tsu_error_rate": 0.02,
    },
))

register_scenario(Scenario(
    "long-read-heavy",
    "3x longer and 3x more long reads, fewer short reads (HiFi-shaped)",
    {"long_reads": 30, "long_read_length": 4500, "short_reads": 30},
))

register_scenario(Scenario(
    "sv-rich",
    "8x inversion/duplication rates with longer SVs: nested bubbles",
    {
        "rates": replace(SUITE_RATES,
                         inversion=SUITE_RATES.inversion * 8.0,
                         duplication=SUITE_RATES.duplication * 8.0,
                         sv_mean_length=240.0),
    },
))
