"""The scenario registry: named corpora the suite can run against.

A *scenario* is a named bundle of :class:`~repro.data.spec.DatasetSpec`
parameter overrides — the graph-variation axes of Figure 11 and of
*The design and construction of reference pangenome graphs* (sample
count and divergence shape the graph) made selectable: ``repro run
--scenario dense-pop`` re-runs any study against a different corpus,
and the scenario name is threaded through :class:`KernelReport`
metadata and the result store's cache key so per-scenario figures never
collide.

The registry is a **runtime view over declarative manifests**
(:mod:`repro.data.manifest`): importing this module expands the
committed ``benchmarks/manifests/suite.toml`` — the five historical
scenarios, bit-identical to the old hand-written registrations — and
``repro sweep`` installs whole manifest grids on top.  Registering a
one-off workload programmatically is still one
:func:`register_scenario` call; the registry mirrors
``KERNEL_REGISTRY`` / ``STUDY_REGISTRY``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.spec import DatasetSpec
from repro.errors import DatasetError


@dataclass(frozen=True)
class Scenario:
    """A named corpus: description plus spec parameter overrides.

    ``fidelity`` grades the cell (``"paper"`` cells are asserted against
    the paper-shape gates during sweeps); ``axes`` records the manifest
    grid coordinates the scenario expanded from, when it did.
    """

    name: str
    description: str
    overrides: dict = field(default_factory=dict)
    fidelity: str = "bench"
    axes: dict = field(default_factory=dict)

    def spec(self, scale: float = 1.0, seed: int = 0) -> DatasetSpec:
        """The scenario's :class:`DatasetSpec` at the given run axes."""
        return DatasetSpec(scenario=self.name, scale=scale, seed=seed,
                           **self.overrides)


#: name -> Scenario, in registration order (display order).
SCENARIO_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry (unique names enforced)."""
    if not scenario.name:
        raise DatasetError("scenario has no name")
    if scenario.name in SCENARIO_REGISTRY:
        raise DatasetError(f"duplicate scenario name {scenario.name!r}")
    scenario.spec()  # validate the overrides eagerly
    SCENARIO_REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_REGISTRY))
        raise DatasetError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, in registration order."""
    return tuple(SCENARIO_REGISTRY)


def scenario_spec(name: str, scale: float = 1.0, seed: int = 0) -> DatasetSpec:
    """The :class:`DatasetSpec` for a registered scenario.

    Validates the run axes up front: a non-positive ``scale`` raises a
    :class:`~repro.errors.DatasetError` naming the scenario instead of
    surfacing as a bare spec-construction failure downstream.
    """
    scenario = get_scenario(name)
    if not scale > 0:
        raise DatasetError(
            f"scenario {name!r} scale must be > 0, got {scale!r}"
        )
    return scenario.spec(scale=scale, seed=seed)


def _install_suite_manifest() -> None:
    """Populate the registry from the committed suite manifest (the
    compat view: same five scenarios, now declaratively sourced)."""
    from repro.data import manifest as _manifest

    _manifest.install_manifest(
        _manifest.load_manifest(
            _manifest.default_manifest_dir()
            / f"{_manifest.SUITE_MANIFEST}.toml"
        )
    )


_install_suite_manifest()
