"""Corpus construction: one :class:`SuiteData` per :class:`DatasetSpec`.

This is the generator behind the artifact store — the code that used to
live behind ``repro.kernels.datasets.suite_data``'s per-process
``lru_cache``, now driven entirely by the declarative spec.  For the
``default`` scenario it reproduces the historical corpus bit-for-bit
(same RNG streams), so paper-shape assertions carry over unchanged.

Also here: the derived-input generators shared across kernels
(:func:`tsu_pairs`, :func:`gbwt_queries`) and the
:func:`corpus_fingerprint` content hash that the cross-process
determinism tests (and ``repro data list``) rely on.
"""

from __future__ import annotations

import hashlib
import random

from dataclasses import dataclass

from repro.data.spec import SUITE_RATES, DatasetSpec
from repro.graph.builder import GraphPangenome, simulate_graph_pangenome
from repro.graph.model import SequenceGraph
from repro.sequence.mutate import VariantRates, apply_variants, sample_variants
from repro.sequence.records import ReadSet, SequenceRecord
from repro.sequence.simulate import ILLUMINA, ReadProfile, ReadSimulator

__all__ = [
    "SUITE_RATES", "SuiteData", "build_corpus", "corpus_fingerprint",
    "gbwt_queries", "gbwt_queries_range", "mutate_sequence", "tsu_pairs",
    "tsu_pairs_range",
]


@dataclass(frozen=True)
class SuiteData:
    """The shared corpus every kernel dataset derives from.

    ``held_out`` is an assembly diverged from the same ancestor but NOT
    threaded into the graph — the realistic input for chromosome-to-graph
    mapping (a new sample being added, as in Minigraph-Cactus).
    """

    graph_pangenome: GraphPangenome
    short_reads: ReadSet
    long_reads: ReadSet
    assemblies: tuple[SequenceRecord, ...]
    held_out: SequenceRecord
    seed: int
    scale: float
    scenario: str = "default"

    @property
    def graph(self) -> SequenceGraph:
        return self.graph_pangenome.graph

    @property
    def reference(self) -> SequenceRecord:
        return self.graph_pangenome.reference


def _long_profile(spec: DatasetSpec) -> ReadProfile:
    """HiFi-like reads scaled so one read spans a useful graph stretch."""
    mean = max(400, int(spec.long_read_length * min(spec.scale, 4.0)))
    return ReadProfile(
        "hifi_scaled", mean_length=mean, length_sd=mean // 5,
        substitution_rate=0.004, insertion_rate=0.003, deletion_rate=0.003,
    )


def build_corpus(spec: DatasetSpec) -> SuiteData:
    """Build the shared corpus *spec* describes (pure: no caching here —
    memoization and cross-process sharing live in the artifact store)."""
    genome_length = int(spec.genome_length * spec.scale)
    gp = simulate_graph_pangenome(
        genome_length=genome_length,
        n_haplotypes=spec.n_haplotypes,
        seed=spec.seed,
        rates=spec.rates,
    )
    rng = random.Random(f"suite-{spec.seed}")
    donor_short = gp.haplotypes[rng.randrange(len(gp.haplotypes))]
    donor_long = gp.haplotypes[rng.randrange(len(gp.haplotypes))]
    short_reads = ReadSimulator(ILLUMINA, seed=spec.seed + 1).simulate(
        donor_short, n_reads=max(20, int(spec.short_reads * spec.scale))
    )
    long_reads = ReadSimulator(_long_profile(spec), seed=spec.seed + 2).simulate(
        donor_long, n_reads=max(4, int(spec.long_reads * spec.scale))
    )
    # Held-out assembly: same ancestor, an independent and more divergent
    # variant set, never threaded into the graph.
    held_rng = random.Random(f"held-out-{spec.seed}")
    held_rates = VariantRates(
        snp=spec.rates.snp * spec.held_out_divergence,
        insertion=spec.rates.insertion * spec.held_out_divergence,
        deletion=spec.rates.deletion * spec.held_out_divergence,
        inversion=spec.rates.inversion,
        duplication=spec.rates.duplication,
        indel_mean_length=6.0,
        sv_mean_length=spec.rates.sv_mean_length,
    )
    held_variants = sample_variants(gp.reference.sequence, rates=held_rates,
                                    rng=held_rng)
    held_out = SequenceRecord(
        "held_out", apply_variants(gp.reference.sequence, held_variants)
    )
    return SuiteData(
        graph_pangenome=gp,
        short_reads=short_reads,
        long_reads=long_reads,
        assemblies=tuple(gp.pangenome.records),
        held_out=held_out,
        seed=spec.seed,
        scale=spec.scale,
        scenario=spec.scenario,
    )


def corpus_fingerprint(data: SuiteData) -> str:
    """A 16-hex content hash of everything in the corpus.

    Covers the graph (nodes, edges, paths), all sequences and all reads,
    so two corpora fingerprint equal iff every kernel would see
    identical inputs — the invariant the cross-process determinism
    tests assert (the old ``lru_cache`` hid rebuild divergence
    entirely: no two builds in one process ever happened).
    """
    digest = hashlib.sha256()

    def feed(*parts: object) -> None:
        for part in parts:
            digest.update(str(part).encode())
            digest.update(b"\x00")

    graph = data.graph
    feed("nodes")
    for node_id in sorted(graph.node_ids()):
        feed(node_id, graph.node(node_id).sequence)
    feed("edges")
    for source, target in sorted(graph.edges()):
        feed(source, target)
    feed("paths")
    for name in graph.path_names():
        feed(name, ",".join(map(str, graph.path(name).nodes)))
    feed("reference", data.reference.name, data.reference.sequence)
    feed("held_out", data.held_out.name, data.held_out.sequence)
    feed("assemblies")
    for record in data.assemblies:
        feed(record.name, record.sequence)
    for label, reads in (("short", data.short_reads),
                         ("long", data.long_reads)):
        feed(label)
        for read in reads:
            feed(read.name, read.sequence)
    return digest.hexdigest()[:16]


def mutate_sequence(sequence: str, error_rate: float, rng: random.Random) -> str:
    """Apply uniform substitution/indel noise (used by the TSU generator)."""
    out: list[str] = []
    third = error_rate / 3.0
    for base in sequence:
        roll = rng.random()
        if roll < third:
            continue  # deletion
        if roll < 2 * third:
            out.append(rng.choice("ACGT"))
            out.append(base)
        elif roll < error_rate:
            out.append(rng.choice([b for b in "ACGT" if b != base]))
        else:
            out.append(base)
    if not out:
        out.append(sequence[0] if sequence else "A")
    return "".join(out)


def tsu_pairs(
    n_pairs: int, length: int, error_rate: float = 0.01, seed: int = 0
) -> list[tuple[str, str]]:
    """TSU's dataset: sequence pairs at a given length and error rate
    (the paper's generator script uses 10 kbp at 1%).

    Extension semantics: pair *i* is drawn from its own RNG substream
    seeded by ``(seed, length, i)``, so ``tsu_pairs(10, ...)`` is
    exactly ``tsu_pairs(20, ...)[:10]`` *by construction* — growing the
    count extends the dataset, it never reshuffles it.  (The old shared
    stream happened to be prefix-stable only because each pair consumed
    a deterministic number of draws; per-item substreams make the
    guarantee structural and keep every pair independent of the count.)
    """
    return tsu_pairs_range(0, n_pairs, length, error_rate=error_rate,
                           seed=seed)


def tsu_pairs_range(
    start: int, stop: int, length: int, error_rate: float = 0.01,
    seed: int = 0,
) -> list[tuple[str, str]]:
    """Pairs ``start..stop`` of the :func:`tsu_pairs` dataset.

    Because each pair lives on its own ``(seed, length, index)``
    substream, this is exactly ``tsu_pairs(stop, ...)[start:stop]``
    without generating the prefix — the chunk primitive behind the
    streaming execution mode.
    """
    pairs = []
    for index in range(start, stop):
        rng = random.Random(f"tsu-{seed}-{length}-{index}")
        a = "".join(rng.choice("ACGT") for _ in range(length))
        pairs.append((a, mutate_sequence(a, error_rate, rng)))
    return pairs


def gbwt_queries(
    graph: SequenceGraph, n_queries: int, seed: int = 0,
    min_length: int = 1, max_length: int = 100,
) -> list[tuple[int, ...]]:
    """GBWT's dataset: random haplotype subpaths of length 1..100
    (exactly the paper's generator, Section 4.2).

    Same extension semantics as :func:`tsu_pairs`: query *i* has its own
    substream seeded by ``(seed, i)``, so a 200-query set is a prefix of
    the 2000-query set at the same seed.
    """
    return gbwt_queries_range(graph, 0, n_queries, seed=seed,
                              min_length=min_length, max_length=max_length)


def gbwt_queries_range(
    graph: SequenceGraph, start: int, stop: int, seed: int = 0,
    min_length: int = 1, max_length: int = 100,
) -> list[tuple[int, ...]]:
    """Queries ``start..stop`` of the :func:`gbwt_queries` dataset —
    the chunk primitive for streaming (identical to a slice of the full
    set, per the per-index substream design)."""
    names = graph.path_names()
    queries: list[tuple[int, ...]] = []
    for index in range(start, stop):
        rng = random.Random(f"gbwt-{seed}-{index}")
        path = graph.path(names[rng.randrange(len(names))])
        length = rng.randint(min_length, min(max_length, len(path.nodes)))
        begin = rng.randrange(len(path.nodes) - length + 1)
        queries.append(tuple(path.nodes[begin : begin + length]))
    return queries
