"""Declarative dataset specifications (the Table 2/3 analog, reified).

The paper derives every kernel's input from one upstream corpus by
running each tool "up until the kernel"; its graph-variation study
(Figure 11) then sweeps *corpus parameters* — haplotype count,
divergence, read profiles.  A :class:`DatasetSpec` captures exactly
those axes as data: every field that influences corpus content is part
of the spec, the spec is content-hashable, and the hash (together with
:data:`GENERATOR_VERSION`) keys the on-disk artifact store in
:mod:`repro.data.store`.

Kernels, tools and pipelines *declare* the spec they want instead of
calling a generator inline; the store turns equal specs into one shared
build.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.errors import DatasetError
from repro.sequence.mutate import VariantRates

#: Bump whenever corpus *content* for an unchanged spec changes (a
#: generator algorithm or RNG-stream change).  Part of every artifact
#: digest, so stale on-disk corpora are never served silently;
#: ``repro data gc`` reclaims them.
GENERATOR_VERSION = 1

#: Rates tuned so the graph's mean node length lands near the paper's
#: M-graph (~27 bp/node) for the default population size.
SUITE_RATES = VariantRates(snp=0.004, insertion=0.0008, deletion=0.0008,
                           inversion=0.00005, duplication=0.00005)


@dataclass(frozen=True)
class DatasetSpec:
    """Everything that determines the content of one suite corpus.

    ``scenario`` names the registered parameter bundle the spec came
    from (:mod:`repro.data.scenarios`); ``scale``/``seed`` are the two
    per-run axes the harness sweeps.  The remaining fields are the
    corpus parameters themselves, all expressed at ``scale == 1.0``:

    * ``genome_length`` — ancestral genome length in bases;
    * ``n_haplotypes`` — population size threaded into the graph (the
      sample-count axis of the reference-pangenome design space);
    * ``rates`` — the population's variant model (the divergence axis);
    * ``short_reads`` / ``long_reads`` — read counts per unit scale;
    * ``long_read_length`` — mean long-read length before scaling;
    * ``held_out_divergence`` — multiplier on the SNP/indel rates of the
      held-out assembly (the new-sample mapping input);
    * ``tsu_error_rate`` — pairwise divergence of the TSU sequence
      pairs (the paper's generator uses 1%).
    """

    scenario: str = "default"
    scale: float = 1.0
    seed: int = 0
    genome_length: int = 20_000
    n_haplotypes: int = 8
    rates: VariantRates = SUITE_RATES
    short_reads: int = 60
    long_reads: int = 10
    long_read_length: int = 1500
    held_out_divergence: float = 2.0
    tsu_error_rate: float = 0.01

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise DatasetError("spec scale must be positive")
        if self.genome_length <= 0:
            raise DatasetError("spec genome_length must be positive")
        if self.n_haplotypes < 1:
            raise DatasetError("spec needs at least one haplotype")

    def key(self) -> dict:
        """The canonical content-key payload (JSON-able, sorted)."""
        payload = asdict(self)
        payload["generator_version"] = GENERATOR_VERSION
        return payload

    def digest(self) -> str:
        """16-hex content digest identifying this spec's corpus."""
        canonical = json.dumps(self.key(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def with_run_axes(self, scale: float, seed: int) -> "DatasetSpec":
        """The same corpus parameters at different run axes."""
        return replace(self, scale=scale, seed=seed)
