"""The workload subsystem: declarative dataset specs, a shared on-disk
artifact store, and a scenario registry.

Where the suite's datasets come from (DESIGN.md "Workloads"):

* :mod:`repro.data.spec` — :class:`DatasetSpec`, the content-hashable
  description of one corpus (every parameter that shapes the graph and
  reads, plus the generator version);
* :mod:`repro.data.manifest` — declarative TOML scenario manifests
  under ``benchmarks/manifests/``: corpus axes whose cross-product
  expands into content-hashed cells (``repro sweep`` runs the grid);
* :mod:`repro.data.scenarios` — ``SCENARIO_REGISTRY``, the runtime view
  over the expanded suite manifest (``default``, ``dense-pop``,
  ``divergent``, ``long-read-heavy``, ``sv-rich``) selectable via
  ``repro run --scenario``; sweeps install further manifests on top;
* :mod:`repro.data.corpus` — the generators: :func:`build_corpus`
  (spec -> :class:`SuiteData`) and the shared derived-input generators;
* :mod:`repro.data.derive` — registry of cacheable corpus -> kernel
  input transforms (each kernel's "run the tool up until the kernel");
* :mod:`repro.data.store` — the content-addressed on-disk
  :class:`ArtifactStore` under ``benchmarks/datasets/`` with file
  locking (concurrent workers build once) and an evictable in-memory
  layer.

>>> from repro.data import corpus, scenario_names
>>> sorted(scenario_names())[:2]
['default', 'dense-pop']
"""

from repro.data.corpus import (
    SUITE_RATES,
    SuiteData,
    build_corpus,
    corpus_fingerprint,
    gbwt_queries,
    gbwt_queries_range,
    mutate_sequence,
    tsu_pairs,
    tsu_pairs_range,
)
from repro.data.derive import DERIVATIONS, Derivation, derivation, get_derivation
from repro.data.manifest import (
    Manifest,
    ManifestCell,
    available_manifests,
    default_manifest_dir,
    install_manifest,
    load_manifest,
    loads_manifest,
    parse_manifest,
    resolve_manifest,
)
from repro.data.scenarios import (
    SCENARIO_REGISTRY,
    Scenario,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_spec,
)
from repro.data.spec import GENERATOR_VERSION, DatasetSpec
from repro.data.streaming import (
    ChunkedSeries,
    StreamingConfig,
    streaming,
    streaming_config,
    streaming_mode,
)
from repro.data.store import (
    ArtifactStore,
    default_data_dir,
    default_store,
    ensure_corpus,
    set_default_store,
    use_store,
)


def corpus(scenario: str = "default", scale: float = 1.0,
           seed: int = 0) -> SuiteData:
    """The shared corpus for a named scenario, via the default store."""
    return default_store().corpus(scenario_spec(scenario, scale=scale,
                                                seed=seed))


__all__ = [
    "GENERATOR_VERSION", "DatasetSpec",
    "SCENARIO_REGISTRY", "Scenario", "get_scenario", "register_scenario",
    "scenario_names", "scenario_spec",
    "Manifest", "ManifestCell", "available_manifests",
    "default_manifest_dir", "install_manifest", "load_manifest",
    "loads_manifest", "parse_manifest", "resolve_manifest",
    "SUITE_RATES", "SuiteData", "build_corpus", "corpus",
    "corpus_fingerprint", "gbwt_queries", "gbwt_queries_range",
    "mutate_sequence", "tsu_pairs", "tsu_pairs_range",
    "DERIVATIONS", "Derivation", "derivation", "get_derivation",
    "ChunkedSeries", "StreamingConfig", "streaming", "streaming_config",
    "streaming_mode",
    "ArtifactStore", "default_data_dir", "default_store", "ensure_corpus",
    "set_default_store", "use_store",
]
