"""TC kernel: seqwish's transitive closure (from PGGB).

Inputs (Table 3: "Alignments"): the assemblies plus their all-to-all
exact matches from wfmash.  The kernel is the closure pass itself —
interval-tree chases over a seen-bitvector — run single-threaded like
the paper's extracted version.
"""

from __future__ import annotations

from repro.build.seqwish import transclose
from repro.build.wfmash import all_to_all
from repro.data import derivation
from repro.errors import KernelError
from repro.kernels.base import (
    SCALAR,
    VECTORIZED,
    Kernel,
    KernelResult,
    register,
)
from repro.uarch.events import MachineProbe


@derivation("tc_inputs")
def _derive_tc_inputs(data, spec):
    """wfmash's all-to-all matches over the assembly subset — the
    quadratic preparation the artifact store amortizes across runs."""
    n_assemblies = max(3, min(len(data.assemblies), int(3 + 3 * spec.scale)))
    records = list(data.assemblies[:n_assemblies])
    matches, _ = all_to_all(records)
    return records, matches


@register
class TCKernel(Kernel):
    """Transitive closure of all-to-all alignment matches."""

    name = "tc"
    parent_tool = "pggb"
    input_type = "alignments"
    #: Stab-plan batched closure, with the per-position scalar chase
    #: (the differential oracle) selectable as a backend.
    SUPPORTED_BACKENDS = (SCALAR, VECTORIZED)

    def prepare(self) -> None:
        # The paper runs TC on assemblies; a subset keeps the quadratic
        # all-to-all preparation proportional to scale.
        self.records, self.matches = self.derived("tc_inputs")
        if not self.matches:
            raise KernelError("no matches for TC")

    def _execute(self, probe: MachineProbe) -> KernelResult:
        result = transclose(self.records, self.matches, probe=probe,
                            backend=self.backend)
        stats = result.stats
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=len(self.matches),
            work={
                "positions": float(stats.positions),
                "closures": float(stats.closures),
                "tree_queries": float(stats.tree_queries),
                "tree_nodes_visited": float(stats.tree_nodes_visited),
                "bitvector_reads": float(stats.bitvector_reads),
            },
        )

    def validate(self) -> None:
        """Closures must be consistent: every match pair shares a closure,
        and closure members share one character."""
        self.ensure_prepared()
        result = transclose(self.records, self.matches)
        text = "".join(record.sequence for record in self.records)
        for match in self.matches[:200]:
            q = result.offsets[match.query_name] + match.query_start
            t = result.offsets[match.target_name] + match.target_start
            for i in range(match.length):
                if result.closure_of[q + i] != result.closure_of[t + i]:
                    raise KernelError("matched positions in different closures")
        for position, closure in enumerate(result.closure_of):
            if text[position] != result.closure_base[closure]:
                raise KernelError("closure merged different characters")
