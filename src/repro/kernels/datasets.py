"""Compatibility shim over :mod:`repro.data` (the old dataset module).

Dataset preparation is now a first-class subsystem: declarative specs
(:class:`repro.data.DatasetSpec`), a scenario registry, and a shared
on-disk artifact store under ``benchmarks/datasets/``.  This module
keeps the historical import surface alive for existing callers.

:func:`suite_data` resolves through the default
:class:`~repro.data.store.ArtifactStore`, whose in-memory layer is a
bounded ring over weak references — unlike the old
``lru_cache(maxsize=4)`` it never pins corpora for process lifetime,
and on a warm store repeated calls deserialize instead of rebuilding.
"""

from __future__ import annotations

from repro.data import (  # noqa: F401 - re-exported compat surface
    SUITE_RATES,
    SuiteData,
    default_store,
    gbwt_queries,
    mutate_sequence,
    scenario_spec,
    tsu_pairs,
)

__all__ = [
    "SUITE_RATES", "SuiteData", "gbwt_queries", "mutate_sequence",
    "suite_data", "tsu_pairs",
]


def suite_data(scale: float = 1.0, seed: int = 0) -> SuiteData:
    """The default-scenario corpus for ``(scale, seed)``, via the store."""
    return default_store().corpus(
        scenario_spec("default", scale=scale, seed=seed)
    )
