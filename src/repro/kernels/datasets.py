"""Compatibility shim over :mod:`repro.data` (the old dataset module).

Dataset preparation is now a first-class subsystem: declarative specs
(:class:`repro.data.DatasetSpec`), a manifest-driven scenario registry,
and a shared on-disk artifact store under ``benchmarks/datasets/``.
This module keeps the historical import surface alive for existing
callers; new code should import from :mod:`repro.data` directly.

:func:`suite_data` resolves through the default
:class:`~repro.data.store.ArtifactStore` and emits one
``DeprecationWarning`` per process (not one per call) pointing at the
replacement; the default scenario it resolves reproduces the historical
corpus bit-for-bit (test-asserted against golden spec digests and the
corpus fingerprint).
"""

from __future__ import annotations

import warnings

from repro.data import (  # noqa: F401 - re-exported compat surface
    SUITE_RATES,
    SuiteData,
    default_store,
    gbwt_queries,
    mutate_sequence,
    scenario_spec,
    tsu_pairs,
)

__all__ = [
    "SUITE_RATES", "SuiteData", "gbwt_queries", "mutate_sequence",
    "suite_data", "tsu_pairs",
]

#: One warning per process: the shim is called from hot loops (session
#: fixtures, benches), and a warning per call would drown real ones.
_warned = False


def _warn_once() -> None:
    global _warned
    if not _warned:
        _warned = True
        warnings.warn(
            "repro.kernels.datasets.suite_data is deprecated; use "
            "repro.data.corpus(scenario, scale, seed) or the artifact "
            "store directly",
            DeprecationWarning,
            stacklevel=3,
        )


def suite_data(scale: float = 1.0, seed: int = 0) -> SuiteData:
    """The default-scenario corpus for ``(scale, seed)``, via the store."""
    _warn_once()
    return default_store().corpus(
        scenario_spec("default", scale=scale, seed=seed)
    )
