"""Shared suite datasets (the Table 2/3 analog).

The paper derives every kernel dataset from one upstream corpus
(chromosome-20 reads and assemblies against the HPRC graph) by running
each tool "up until the kernel" and dumping the kernel's inputs.  This
module does the same against the synthetic pangenome: one
:func:`suite_data` corpus per (scale, seed), memoized, from which each
kernel's ``prepare`` extracts its inputs.

At ``scale=1.0`` everything fits interactive runs; the paper's datasets
are of course vastly larger — see DESIGN.md's substitution table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.graph.builder import GraphPangenome, simulate_graph_pangenome
from repro.graph.model import SequenceGraph
from repro.sequence.mutate import VariantRates, apply_variants, sample_variants
from repro.sequence.records import ReadSet, SequenceRecord
from repro.sequence.simulate import ILLUMINA, ReadProfile, ReadSimulator

#: Rates tuned so the graph's mean node length lands near the paper's
#: M-graph (~27 bp/node) for the default population size.
SUITE_RATES = VariantRates(snp=0.004, insertion=0.0008, deletion=0.0008,
                           inversion=0.00005, duplication=0.00005)


@dataclass(frozen=True)
class SuiteData:
    """The shared corpus every kernel dataset derives from.

    ``held_out`` is an assembly diverged from the same ancestor but NOT
    threaded into the graph — the realistic input for chromosome-to-graph
    mapping (a new sample being added, as in Minigraph-Cactus).
    """

    graph_pangenome: GraphPangenome
    short_reads: ReadSet
    long_reads: ReadSet
    assemblies: tuple[SequenceRecord, ...]
    held_out: SequenceRecord
    seed: int
    scale: float

    @property
    def graph(self) -> SequenceGraph:
        return self.graph_pangenome.graph

    @property
    def reference(self) -> SequenceRecord:
        return self.graph_pangenome.reference


def _long_profile(scale: float) -> ReadProfile:
    """HiFi-like reads scaled so one read spans a useful graph stretch."""
    mean = max(400, int(1500 * min(scale, 4.0)))
    return ReadProfile(
        "hifi_scaled", mean_length=mean, length_sd=mean // 5,
        substitution_rate=0.004, insertion_rate=0.003, deletion_rate=0.003,
    )


@lru_cache(maxsize=4)
def suite_data(scale: float = 1.0, seed: int = 0) -> SuiteData:
    """Build (and memoize) the shared corpus for one (scale, seed)."""
    genome_length = int(20_000 * scale)
    n_haplotypes = 8
    gp = simulate_graph_pangenome(
        genome_length=genome_length,
        n_haplotypes=n_haplotypes,
        seed=seed,
        rates=SUITE_RATES,
    )
    rng = random.Random(f"suite-{seed}")
    donor_short = gp.haplotypes[rng.randrange(len(gp.haplotypes))]
    donor_long = gp.haplotypes[rng.randrange(len(gp.haplotypes))]
    short_reads = ReadSimulator(ILLUMINA, seed=seed + 1).simulate(
        donor_short, n_reads=max(20, int(60 * scale))
    )
    long_reads = ReadSimulator(_long_profile(scale), seed=seed + 2).simulate(
        donor_long, n_reads=max(4, int(10 * scale))
    )
    # Held-out assembly: same ancestor, an independent and more divergent
    # variant set, never threaded into the graph.
    held_rng = random.Random(f"held-out-{seed}")
    held_rates = VariantRates(
        snp=SUITE_RATES.snp * 2.0,
        insertion=SUITE_RATES.insertion * 2.0,
        deletion=SUITE_RATES.deletion * 2.0,
        inversion=SUITE_RATES.inversion,
        duplication=SUITE_RATES.duplication,
        indel_mean_length=6.0,
        sv_mean_length=SUITE_RATES.sv_mean_length,
    )
    held_variants = sample_variants(gp.reference.sequence, rates=held_rates, rng=held_rng)
    held_out = SequenceRecord(
        "held_out", apply_variants(gp.reference.sequence, held_variants)
    )
    return SuiteData(
        graph_pangenome=gp,
        short_reads=short_reads,
        long_reads=long_reads,
        assemblies=tuple(gp.pangenome.records),
        held_out=held_out,
        seed=seed,
        scale=scale,
    )


def mutate_sequence(sequence: str, error_rate: float, rng: random.Random) -> str:
    """Apply uniform substitution/indel noise (used by the TSU generator)."""
    out: list[str] = []
    third = error_rate / 3.0
    for base in sequence:
        roll = rng.random()
        if roll < third:
            continue  # deletion
        if roll < 2 * third:
            out.append(rng.choice("ACGT"))
            out.append(base)
        elif roll < error_rate:
            out.append(rng.choice([b for b in "ACGT" if b != base]))
        else:
            out.append(base)
    if not out:
        out.append(sequence[0] if sequence else "A")
    return "".join(out)


def tsu_pairs(
    n_pairs: int, length: int, error_rate: float = 0.01, seed: int = 0
) -> list[tuple[str, str]]:
    """TSU's dataset: sequence pairs at a given length and error rate
    (the paper's generator script uses 10 kbp at 1%)."""
    rng = random.Random(f"tsu-{seed}-{length}")
    pairs = []
    for _ in range(n_pairs):
        a = "".join(rng.choice("ACGT") for _ in range(length))
        pairs.append((a, mutate_sequence(a, error_rate, rng)))
    return pairs


def gbwt_queries(
    graph: SequenceGraph, n_queries: int, seed: int = 0,
    min_length: int = 1, max_length: int = 100,
) -> list[tuple[int, ...]]:
    """GBWT's dataset: random haplotype subpaths of length 1..100
    (exactly the paper's generator, Section 4.2)."""
    rng = random.Random(f"gbwt-{seed}")
    names = graph.path_names()
    queries: list[tuple[int, ...]] = []
    for _ in range(n_queries):
        path = graph.path(names[rng.randrange(len(names))])
        length = rng.randint(min_length, min(max_length, len(path.nodes)))
        start = rng.randrange(len(path.nodes) - length + 1)
        queries.append(tuple(path.nodes[start : start + length]))
    return queries
