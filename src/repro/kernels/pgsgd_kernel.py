"""PGSGD kernel: path-guided SGD layout (from odgi / PGGB).

Inputs (Table 3: "Pangenome"): the full pangenome graph with its paths —
the one kernel that touches the *whole* graph rather than seed-local
subgraphs, which is why it alone is memory-bound (Section 5.2).

The only suite kernel with all three backends: ``vectorized`` (batched
conflict-free runs), ``scalar`` (the sequential oracle), and ``gpu``
(the SIMT model after "Rapid GPU-Based Pangenome Graph Layout",
arXiv 2409.00876 — the ``gpu`` study lifts its Table 7-style counters).
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.kernels.base import (
    GPU,
    SCALAR,
    VECTORIZED,
    Kernel,
    KernelResult,
    register,
)
from repro.layout.pgsgd import PGSGDLayout, PGSGDParams
from repro.layout.pgsgd_gpu import pgsgd_layout_gpu
from repro.uarch.events import MachineProbe


@register
class PGSGDKernel(Kernel):
    """Run the PGSGD update loop over the full suite graph."""

    name = "pgsgd"
    parent_tool = "pggb"
    input_type = "pangenome"
    SUPPORTED_BACKENDS = (SCALAR, VECTORIZED, GPU)

    def prepare(self) -> None:
        self.graph = self.dataset().graph
        # virtual_anchor_scale models the paper's full-size (1.7 GB)
        # layout array: the working set must overflow every cache level.
        self.params = PGSGDParams(
            iterations=12,
            updates_per_iteration=max(1000, 6 * self.graph.node_count),
            seed=self.seed,
            virtual_anchor_scale=512,
        )

    def _execute(self, probe: MachineProbe) -> KernelResult:
        if self.backend == GPU:
            return self._execute_gpu()
        layout = PGSGDLayout(self.graph, params=self.params, probe=probe,
                             backend=self.backend)
        result = layout.run()
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=result.updates,
            work={
                "updates": float(result.updates),
                "initial_stress": result.stress_history[0],
                "final_stress": result.final_stress,
                "path_index_work": float(result.path_index_work),
            },
        )

    def _execute_gpu(self) -> KernelResult:
        """The SIMT device model: emits no CPU probe events (the trace
        studies skip it); its profile lives in the GPU work counters,
        which the ``gpu`` study lifts into ``report.gpu``."""
        gpu = pgsgd_layout_gpu(self.graph, params=self.params)
        layout = gpu.layout
        report = gpu.report
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=layout.updates,
            work={
                "updates": float(layout.updates),
                "initial_stress": layout.stress_history[0],
                "final_stress": layout.final_stress,
                "gpu_time_ms": report.time_ms,
                "theoretical_occupancy": report.theoretical_occupancy,
                "achieved_occupancy": report.achieved_occupancy,
                "warp_utilization": report.warp_utilization,
                "memory_bw_utilization": report.memory_bw_utilization,
            },
        )

    def validate(self) -> None:
        """From a random (twisted) start, the layout must untangle:
        stress has to drop by well over an order of magnitude."""
        self.ensure_prepared()
        import dataclasses

        params = dataclasses.replace(self.params, initialization="random")
        result = PGSGDLayout(self.graph, params=params).run()
        if not result.final_stress < 0.1 * result.stress_history[0]:
            raise KernelError(
                f"PGSGD failed to converge: {result.stress_history[0]:.2f} -> "
                f"{result.final_stress:.2f}"
            )
