"""PGSGD kernel: path-guided SGD layout (from odgi / PGGB).

Inputs (Table 3: "Pangenome"): the full pangenome graph with its paths —
the one kernel that touches the *whole* graph rather than seed-local
subgraphs, which is why it alone is memory-bound (Section 5.2).
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.kernels.base import Kernel, KernelResult, register
from repro.layout.pgsgd import PGSGDLayout, PGSGDParams
from repro.uarch.events import MachineProbe


@register
class PGSGDKernel(Kernel):
    """Run the CPU PGSGD update loop over the full suite graph."""

    name = "pgsgd"
    parent_tool = "pggb"
    input_type = "pangenome"

    def prepare(self) -> None:
        self.graph = self.dataset().graph
        # virtual_anchor_scale models the paper's full-size (1.7 GB)
        # layout array: the working set must overflow every cache level.
        self.params = PGSGDParams(
            iterations=12,
            updates_per_iteration=max(1000, 6 * self.graph.node_count),
            seed=self.seed,
            virtual_anchor_scale=512,
        )

    def _execute(self, probe: MachineProbe) -> KernelResult:
        layout = PGSGDLayout(self.graph, params=self.params, probe=probe)
        result = layout.run()
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=result.updates,
            work={
                "updates": float(result.updates),
                "initial_stress": result.stress_history[0],
                "final_stress": result.final_stress,
                "path_index_work": float(result.path_index_work),
            },
        )

    def validate(self) -> None:
        """From a random (twisted) start, the layout must untangle:
        stress has to drop by well over an order of magnitude."""
        self.ensure_prepared()
        import dataclasses

        params = dataclasses.replace(self.params, initialization="random")
        result = PGSGDLayout(self.graph, params=params).run()
        if not result.final_stress < 0.1 * result.stress_history[0]:
            raise KernelError(
                f"PGSGD failed to converge: {result.stress_history[0]:.2f} -> "
                f"{result.final_stress:.2f}"
            )
