"""The PangenomicsBench kernel interface and registry.

Each of the paper's eight kernels (plus the SSW case-study baseline) is a
:class:`Kernel`: ``prepare`` generates/loads its dataset (the analog of
Table 3's per-kernel inputs), ``run`` executes the extracted hot code
under an optional :class:`~repro.uarch.events.MachineProbe`, and
``validate`` self-checks the outputs against an oracle where one exists.

``KERNEL_REGISTRY`` is the suite's ``mainRun.py``-style entry point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import KernelError
from repro.obs import metrics, trace
from repro.uarch.events import NULL_PROBE, MachineProbe


@dataclass(frozen=True)
class KernelResult:
    """Outcome of one kernel execution."""

    kernel: str
    wall_seconds: float
    inputs_processed: int
    work: dict[str, float] = field(default_factory=dict)

    def rate(self) -> float:
        """Inputs per second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.inputs_processed / self.wall_seconds


class Kernel(ABC):
    """One extracted benchmark kernel.

    Subclasses set :attr:`name` and :attr:`parent_tool` and implement
    :meth:`prepare` / :meth:`_execute`.  ``scale`` shrinks or grows the
    dataset (1.0 is the suite default, small enough for interactive use).
    """

    name: str = ""
    parent_tool: str = ""
    #: What the kernel's input items are (Table 3's "Input Type").
    input_type: str = ""

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        if scale <= 0:
            raise KernelError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self._prepared = False

    @abstractmethod
    def prepare(self) -> None:
        """Generate the kernel's dataset (idempotent)."""

    @abstractmethod
    def _execute(self, probe: MachineProbe) -> KernelResult:
        """Run the kernel over the prepared dataset."""

    def run(self, probe: MachineProbe = NULL_PROBE) -> KernelResult:
        """Prepare if needed, execute, and time the kernel.

        Wall time comes from the span tracer (the one timing source in
        the suite): ``kernel/<name>/prepare`` and ``kernel/<name>/execute``
        spans always measure, and show up in trace exports whenever a
        real tracer is installed (``repro trace`` / ``--trace-out``).
        """
        if not self._prepared:
            with trace.timed_span(f"kernel/{self.name}/prepare") as prepared:
                self.prepare()
            self._prepared = True
            metrics.gauge("kernel.prepare_seconds",
                          kernel=self.name).set(prepared.duration)
        with trace.timed_span(f"kernel/{self.name}/execute") as span:
            result = self._execute(probe)
        metrics.counter("kernel.runs", kernel=self.name).inc()
        metrics.gauge("kernel.execute_seconds",
                      kernel=self.name).set(span.duration)
        return KernelResult(
            kernel=result.kernel,
            wall_seconds=span.duration,
            inputs_processed=result.inputs_processed,
            work=result.work,
        )

    def validate(self) -> None:
        """Optional correctness self-check; raises on failure."""


#: name -> factory (scale, seed) -> Kernel
KERNEL_REGISTRY: dict[str, Callable[[float, int], Kernel]] = {}


def register(cls: type[Kernel]) -> type[Kernel]:
    """Class decorator adding a kernel to the registry."""
    if not cls.name:
        raise KernelError(f"{cls.__name__} has no kernel name")
    if cls.name in KERNEL_REGISTRY:
        raise KernelError(f"duplicate kernel name {cls.name!r}")
    KERNEL_REGISTRY[cls.name] = lambda scale=1.0, seed=0: cls(scale=scale, seed=seed)
    return cls


def create_kernel(name: str, scale: float = 1.0, seed: int = 0) -> Kernel:
    """Instantiate a registered kernel by name."""
    try:
        factory = KERNEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(KERNEL_REGISTRY))
        raise KernelError(f"unknown kernel {name!r}; known: {known}") from None
    return factory(scale, seed)


def kernel_names() -> list[str]:
    """All registered kernel names, sorted."""
    return sorted(KERNEL_REGISTRY)
