"""The PangenomicsBench kernel interface and registry.

Each of the paper's eight kernels (plus the SSW case-study baseline) is a
:class:`Kernel`: ``prepare`` generates/loads its dataset (the analog of
Table 3's per-kernel inputs), ``run`` executes the extracted hot code
under an optional :class:`~repro.uarch.events.MachineProbe`, and
``validate`` self-checks the outputs against an oracle where one exists.

``KERNEL_REGISTRY`` is the suite's ``mainRun.py``-style entry point.

Execution variants are selected through the **backend plane**: every
kernel declares the backends it implements (``SUPPORTED_BACKENDS``) and
which one it runs by default (``DEFAULT_BACKEND``), and callers pick one
by name — ``"scalar"`` (the sequential differential oracle),
``"vectorized"`` (the batched default), or ``"gpu"`` (the SIMT device
model, where implemented).  Requesting a backend a kernel does not
implement raises :class:`~repro.errors.KernelError` listing the
supported ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.backends import BACKENDS, GPU, SCALAR, VECTORIZED
from repro.data import DatasetSpec, SuiteData, default_store, scenario_spec
from repro.errors import KernelError
from repro.obs import metrics, trace
from repro.uarch.events import NULL_PROBE, MachineProbe

__all__ = [
    "BACKENDS", "GPU", "SCALAR", "VECTORIZED",
    "KERNEL_CLASSES", "KERNEL_REGISTRY", "Kernel", "KernelResult",
    "create_kernel", "kernel_backends", "kernel_names", "register",
    "resolve_backend",
]


@dataclass(frozen=True)
class KernelResult:
    """Outcome of one kernel execution."""

    kernel: str
    wall_seconds: float
    inputs_processed: int
    work: dict[str, float] = field(default_factory=dict)

    def rate(self) -> float:
        """Inputs per second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.inputs_processed / self.wall_seconds


class Kernel(ABC):
    """One extracted benchmark kernel.

    Subclasses set :attr:`name` and :attr:`parent_tool` and implement
    :meth:`prepare` / :meth:`_execute`.  ``scale`` shrinks or grows the
    dataset (1.0 is the suite default, small enough for interactive use).
    """

    name: str = ""
    parent_tool: str = ""
    #: What the kernel's input items are (Table 3's "Input Type").
    input_type: str = ""
    #: Backends this kernel implements.  Kernels with a sequential
    #: oracle add :data:`SCALAR`; device models add :data:`GPU`.
    SUPPORTED_BACKENDS: tuple[str, ...] = (VECTORIZED,)
    #: The backend used when the caller does not pick one.
    DEFAULT_BACKEND: str = VECTORIZED

    def __init__(self, scale: float = 1.0, seed: int = 0,
                 scenario: str = "default",
                 backend: str | None = None) -> None:
        if scale <= 0:
            raise KernelError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.scenario = scenario
        self.backend = _validate_backend(type(self), backend)
        self._prepared = False
        self._prepared_key: str | None = None

    @property
    def spec(self) -> DatasetSpec:
        """The dataset spec this kernel's inputs derive from."""
        return scenario_spec(self.scenario, scale=self.scale, seed=self.seed)

    def dataset(self) -> SuiteData:
        """The shared corpus, via the default artifact store (warm runs
        deserialize; concurrent cold runs build once under a lock)."""
        return default_store().corpus(self.spec)

    def derived(self, name: str, **params) -> object:
        """A registered derivation's output for this kernel's spec,
        cached in the artifact store next to the corpus."""
        return default_store().derived(self.spec, name, **params)

    @abstractmethod
    def prepare(self) -> None:
        """Generate the kernel's dataset (idempotent)."""

    @abstractmethod
    def _execute(self, probe: MachineProbe) -> KernelResult:
        """Run the kernel over the prepared dataset."""

    def ensure_prepared(self) -> None:
        """Prepare (or re-prepare) when the spec changed since the last
        preparation.

        The prepared state is keyed by the spec digest, not a boolean:
        mutating ``scale``/``seed``/``scenario`` after a run used to
        silently reuse the stale dataset.
        """
        key = self.spec.digest()
        if self._prepared and self._prepared_key == key:
            return
        with trace.timed_span(f"kernel/{self.name}/prepare") as prepared:
            self.prepare()
        self._prepared = True
        self._prepared_key = key
        metrics.gauge("kernel.prepare_seconds", kernel=self.name,
                      backend=self.backend).set(prepared.duration)

    def run(self, probe: MachineProbe = NULL_PROBE) -> KernelResult:
        """Prepare if needed, execute, and time the kernel.

        Wall time comes from the span tracer (the one timing source in
        the suite): ``kernel/<name>/prepare`` and ``kernel/<name>/execute``
        spans always measure, and show up in trace exports whenever a
        real tracer is installed (``repro trace`` / ``--trace-out``).
        """
        self.ensure_prepared()
        with trace.timed_span(f"kernel/{self.name}/execute") as span:
            result = self._execute(probe)
        metrics.counter("kernel.runs", kernel=self.name,
                        backend=self.backend).inc()
        metrics.gauge("kernel.execute_seconds", kernel=self.name,
                      backend=self.backend).set(span.duration)
        return KernelResult(
            kernel=result.kernel,
            wall_seconds=span.duration,
            inputs_processed=result.inputs_processed,
            work=result.work,
        )

    def validate(self) -> None:
        """Optional correctness self-check; raises on failure."""


def _validate_backend(cls: type[Kernel], backend: str | None) -> str:
    """Resolve *backend* for *cls*: ``None``/empty means the kernel's
    default; anything else must be a declared, supported backend."""
    if not backend:
        return cls.DEFAULT_BACKEND
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise KernelError(f"unknown backend {backend!r}; known: {known}")
    if backend not in cls.SUPPORTED_BACKENDS:
        supported = ", ".join(cls.SUPPORTED_BACKENDS)
        raise KernelError(
            f"kernel {cls.name!r} does not support backend {backend!r}; "
            f"supported: {supported}")
    return backend


#: name -> factory (scale, seed, scenario, backend) -> Kernel
KERNEL_REGISTRY: dict[str, Callable[..., Kernel]] = {}
#: name -> kernel class, for backend resolution without instantiation.
KERNEL_CLASSES: dict[str, type[Kernel]] = {}


def register(cls: type[Kernel]) -> type[Kernel]:
    """Class decorator adding a kernel to the registry."""
    if not cls.name:
        raise KernelError(f"{cls.__name__} has no kernel name")
    if cls.name in KERNEL_REGISTRY:
        raise KernelError(f"duplicate kernel name {cls.name!r}")
    if cls.DEFAULT_BACKEND not in cls.SUPPORTED_BACKENDS:
        raise KernelError(
            f"kernel {cls.name!r} default backend {cls.DEFAULT_BACKEND!r} "
            f"is not in SUPPORTED_BACKENDS {cls.SUPPORTED_BACKENDS}")
    KERNEL_REGISTRY[cls.name] = (
        lambda scale=1.0, seed=0, scenario="default", backend=None: cls(
            scale=scale, seed=seed, scenario=scenario, backend=backend
        )
    )
    KERNEL_CLASSES[cls.name] = cls
    return cls


def _kernel_class(name: str) -> type[Kernel]:
    try:
        return KERNEL_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(KERNEL_CLASSES))
        raise KernelError(f"unknown kernel {name!r}; known: {known}") from None


def create_kernel(name: str, scale: float = 1.0, seed: int = 0,
                  scenario: str = "default",
                  backend: str | None = None) -> Kernel:
    """Instantiate a registered kernel by name."""
    try:
        factory = KERNEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(KERNEL_REGISTRY))
        raise KernelError(f"unknown kernel {name!r}; known: {known}") from None
    return factory(scale, seed, scenario, backend)


def resolve_backend(name: str, backend: str | None = None) -> str:
    """The concrete backend kernel *name* would run *backend* on.

    ``None`` resolves to the kernel's :attr:`~Kernel.DEFAULT_BACKEND`;
    an unsupported request raises :class:`~repro.errors.KernelError`
    listing the supported backends.  Used at plan-compile time so cache
    keys always carry the resolved name (an explicit default and an
    implicit one share a digest).
    """
    return _validate_backend(_kernel_class(name), backend)


def kernel_backends(name: str) -> tuple[str, ...]:
    """The backends kernel *name* declares, oracle-first."""
    return _kernel_class(name).SUPPORTED_BACKENDS


def kernel_names() -> list[str]:
    """All registered kernel names, sorted."""
    return sorted(KERNEL_REGISTRY)
