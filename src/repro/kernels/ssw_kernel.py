"""SSW kernel: linear striped Smith–Waterman (Seq2Seq case-study baseline).

Not one of the suite's eight kernels, but the comparison point of the
paper's Section 6.1 case study: the same reads GSSW aligns against
subgraphs are aligned here against plain reference windows, with the
single-previous-column working set that gives SSW ~3x fewer memory
stalls than GSSW.
"""

from __future__ import annotations

import random

from repro.align.scoring import VG_DEFAULT
from repro.align.smith_waterman import StripedSmithWaterman, smith_waterman
from repro.data import derivation
from repro.errors import KernelError
from repro.index.minimizer import SequenceMinimizerIndex
from repro.kernels.base import (
    SCALAR,
    VECTORIZED,
    Kernel,
    KernelResult,
    register,
)
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read, SequenceRecord


def extract_ssw_inputs(
    reference: SequenceRecord,
    reads: list[Read],
    k: int = 15,
    w: int = 10,
    flank: int = 160,
) -> list[tuple[str, str]]:
    """BWA-style pre-alignment: seed, pick the best diagonal, and dump
    the (read, reference window) pairs the SW stage would receive."""
    index = SequenceMinimizerIndex(k=k, w=w)
    index.add(reference.name, reference.sequence)
    items: list[tuple[str, str]] = []
    for read in reads:
        seeds = index.seeds_for(read.sequence)
        sequence = read.sequence
        if seeds and sum(1 for *_x, opp in seeds if opp) * 2 > len(seeds):
            sequence = reverse_complement(read.sequence)
            seeds = index.seeds_for(sequence)
        forward = [(rp, tp) for rp, _n, tp, opp in seeds if not opp]
        if not forward:
            continue
        read_pos, ref_pos = forward[len(forward) // 2]
        start = max(0, ref_pos - read_pos - flank)
        end = min(len(reference.sequence), ref_pos - read_pos + len(read) + flank)
        window = reference.sequence[start:end]
        if window:
            items.append((sequence, window))
    return items


@derivation("ssw_inputs")
def _derive_ssw_inputs(data, spec):
    """BWA's pre-alignment stages, dumped at the SW boundary."""
    return extract_ssw_inputs(data.reference, list(data.short_reads))


@register
class SSWKernel(Kernel):
    """Align short reads against linear reference windows."""

    name = "ssw"
    parent_tool = "bwa_mem"
    input_type = "read fragment + window"
    #: The striped-SIMD aligner, with the scalar Gotoh oracle
    #: selectable as a backend.
    SUPPORTED_BACKENDS = (SCALAR, VECTORIZED)

    def prepare(self) -> None:
        self.items = self.derived("ssw_inputs")
        if not self.items:
            raise KernelError("no SSW inputs extracted")

    def _execute(self, probe) -> KernelResult:
        cells = 0
        score_total = 0
        for query, window in self.items:
            aligner = StripedSmithWaterman(query, VG_DEFAULT, probe=probe,
                                           backend=self.backend)
            result = aligner.align(window)
            cells += result.cells_computed
            score_total += result.score
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=len(self.items),
            work={"dp_cells": float(cells), "score_total": float(score_total)},
        )

    def validate(self) -> None:
        """Striped scores must equal the scalar Gotoh oracle."""
        self.ensure_prepared()
        rng = random.Random(self.seed)
        for query, window in rng.sample(self.items, min(3, len(self.items))):
            fast = StripedSmithWaterman(query, VG_DEFAULT).align(window).score
            slow = smith_waterman(query, window, VG_DEFAULT).score
            if fast != slow:
                raise KernelError(f"SSW mismatch: {fast} != {slow}")
