"""GBV kernel: graph Myers bitvector alignment (from GraphAligner).

Inputs (Table 3: "Clusters"): (long read, cluster subgraph) pairs dumped
from GraphAligner's alignment-stage boundary.
"""

from __future__ import annotations

import random

from repro.align.gbv import GBV, graph_edit_distance_scalar
from repro.data import derivation
from repro.errors import KernelError
from repro.graph.model import SequenceGraph
from repro.graph.ops import local_subgraph
from repro.index.minimizer import GraphMinimizerIndex
from repro.kernels.base import Kernel, KernelResult, register
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read
from repro.uarch.events import MachineProbe


def extract_gbv_inputs(
    graph: SequenceGraph,
    reads: list[Read],
    k: int = 17,
    w: int = 20,
) -> list[tuple[str, SequenceGraph]]:
    """GraphAligner's pre-alignment stages: seeds -> light clusters ->
    (read, local subgraph) alignment jobs."""
    index = GraphMinimizerIndex(graph, k=k, w=w)
    items: list[tuple[str, SequenceGraph]] = []
    for read in reads:
        seeds, flipped = index.oriented_seeds(read.sequence)
        if not seeds:
            continue
        sequence = reverse_complement(read.sequence) if flipped else read.sequence
        anchor = seeds[len(seeds) // 2]
        subgraph = local_subgraph(graph, anchor.node_id, radius_bp=len(read) + 64)
        items.append((sequence, subgraph))
    return items


@derivation("gbv_inputs")
def _derive_gbv_inputs(data, spec):
    """GraphAligner's pre-alignment stages, dumped at the GBV boundary."""
    return extract_gbv_inputs(data.graph, list(data.long_reads))


@register
class GBVKernel(Kernel):
    """Edit-align long reads against cluster subgraphs bit-parallel-style."""

    name = "gbv"
    parent_tool = "graphaligner"
    input_type = "cluster"

    def prepare(self) -> None:
        self.items = self.derived("gbv_inputs")
        if not self.items:
            raise KernelError("no GBV inputs extracted")

    def _execute(self, probe: MachineProbe) -> KernelResult:
        rows = 0
        recomputations = 0
        pushes = 0
        distance_total = 0
        for query, subgraph in self.items:
            result = GBV(query, probe=probe).align(subgraph)
            rows += result.rows_computed
            recomputations += result.recomputations
            pushes += result.queue_pushes
            distance_total += result.distance
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=len(self.items),
            work={
                "rows_computed": float(rows),
                "recomputations": float(recomputations),
                "queue_pushes": float(pushes),
                "distance_total": float(distance_total),
            },
        )

    def validate(self) -> None:
        """GBV distances must equal the scalar label-correcting oracle
        (checked on a truncated sample — the oracle is O(cells) Python)."""
        self.ensure_prepared()
        rng = random.Random(self.seed)
        query, subgraph = self.items[rng.randrange(len(self.items))]
        short_query = query[:60]
        fast = GBV(short_query).align(subgraph).distance
        slow = graph_edit_distance_scalar(short_query, subgraph)
        if fast != slow:
            raise KernelError(f"GBV mismatch: {fast} != {slow}")
