"""GBWT kernel: haplotype-aware index search (from vg giraffe).

Inputs (Table 3: "GBWT Query"): random haplotype subpaths of length
1–100, exactly the paper's generator.  The kernel is the ``find``
operation — a chain of last-first mappings through per-node records —
plus the successor enumeration giraffe's filter stage needs.
"""

from __future__ import annotations

import random

import numpy as np

from repro.data import derivation, gbwt_queries, gbwt_queries_range
from repro.data.streaming import ChunkedSeries, streaming_config
from repro.errors import KernelError
from repro.index.gbwt import ENDMARKER, GBWT
from repro.kernels.base import (
    SCALAR,
    VECTORIZED,
    Kernel,
    KernelResult,
    register,
)
from repro.uarch.events import MachineProbe, OpClass


def _chunks(items, size):
    """Yield *items* in lists of at most *size* (works for iterables)."""
    chunk: list = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _gbwt_query_count(spec) -> int:
    """Dataset size shared by the monolithic and chunked derivations."""
    return max(200, int(2000 * spec.scale))


@derivation("gbwt_queries")
def _derive_gbwt_queries(data, spec):
    """The paper's query generator: random haplotype subpaths of length
    1-100.  The GBWT index itself stays in ``prepare`` — it builds in
    linear time from the shared graph, so caching buys nothing."""
    return gbwt_queries(data.graph, _gbwt_query_count(spec), seed=spec.seed)


@derivation("gbwt_queries_chunk")
def _derive_gbwt_queries_chunk(data, spec, start=0, stop=0):
    """Queries ``start..stop`` of the ``gbwt_queries`` dataset —
    identical to a slice of it (per-index RNG substreams)."""
    return gbwt_queries_range(data.graph, start, stop, seed=spec.seed)


@register
class GBWTKernel(Kernel):
    """Run ``find`` over a batch of haplotype subpath queries."""

    name = "gbwt"
    parent_tool = "giraffe"
    input_type = "gbwt query"

    #: Modelled record size: the GBWT's run-length-compressed records
    #: are tens of bytes (Siren et al.).
    RECORD_BYTES = 48

    #: Batched-numpy wavefront walk by default; the scalar reference
    #: (the differential oracle) is selectable as a backend.
    SUPPORTED_BACKENDS = (SCALAR, VECTORIZED)

    #: Queries per lockstep wavefront; also the streaming chunk size.
    CHUNK = 256

    def prepare(self) -> None:
        data = self.dataset()
        self.graph = data.graph
        self.gbwt = GBWT.from_graph(data.graph)
        config = streaming_config()
        if config is not None:
            self.queries = ChunkedSeries(
                self.spec, "gbwt_queries_chunk",
                _gbwt_query_count(self.spec), config.chunk_items,
            )
        else:
            self.queries = self.derived("gbwt_queries")
        if not self.queries:
            raise KernelError("no GBWT queries generated")
        # Record layout in haplotype-path order: consecutive nodes of a
        # haplotype sit in adjacent records, the locality property the
        # paper credits for GBWT *not* being memory bound.
        self.record_offset: dict[int, int] = {}
        slot = 0
        for name in data.graph.path_names():
            for node_id in data.graph.path(name).nodes:
                if node_id not in self.record_offset:
                    self.record_offset[node_id] = slot
                    slot += 1
        self._build_rank_index()

    def _build_rank_index(self) -> None:
        """Flatten the GBWT records into searchsorted-able arrays.

        ``rank(v, w, pos)`` and ``block_offset(w, v)`` become binary
        searches over composite integer keys, so a whole wavefront of
        query extensions runs as a handful of numpy calls.
        """
        records = self.gbwt._records
        self._nodes_sorted = np.asarray(sorted(records), dtype=np.int64)
        n = int(self._nodes_sorted.shape[0])
        self._n_dense = n
        dense = {int(v): d for d, v in enumerate(self._nodes_sorted)}
        # ENDMARKER successors map to dense id n.
        self._rec_len = np.empty(n, dtype=np.int64)
        self._slot_of = np.empty(n, dtype=np.int64)
        max_len = 1
        visit_v: list[np.ndarray] = []
        visit_w: list[np.ndarray] = []
        visit_pos: list[np.ndarray] = []
        block_keys: list[int] = []
        block_vals: list[int] = []
        for d, real in enumerate(self._nodes_sorted):
            record = records[int(real)]
            length = len(record.successors)
            self._rec_len[d] = length
            self._slot_of[d] = self.record_offset.get(int(real), 0)
            max_len = max(max_len, length)
            succ = np.asarray(
                [n if s == ENDMARKER else dense[s] for s in record.successors],
                dtype=np.int64,
            )
            visit_v.append(np.full(length, d, dtype=np.int64))
            visit_w.append(succ)
            visit_pos.append(np.arange(length, dtype=np.int64))
            for pred, offset in record.block_offset.items():
                pred_dense = dense.get(pred)
                if pred_dense is not None:
                    block_keys.append(d * (n + 1) + pred_dense)
                    block_vals.append(offset)
        self._max_rec = max_len
        vw = np.concatenate(visit_v) * (n + 1) + np.concatenate(visit_w)
        keys = vw * (max_len + 1) + np.concatenate(visit_pos)
        self._rank_keys = np.sort(keys)
        self._pair_ids, pair_start = np.unique(
            self._rank_keys // (max_len + 1), return_index=True
        )
        self._pair_start = pair_start.astype(np.int64)
        border = np.argsort(np.asarray(block_keys, dtype=np.int64))
        self._block_keys = np.asarray(block_keys, dtype=np.int64)[border]
        self._block_vals = np.asarray(block_vals, dtype=np.int64)[border]

    def _rank_block(
        self, v: np.ndarray, w: np.ndarray, pos: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``records[v].rank(w, pos)`` (dense node ids)."""
        vw = v * (self._n_dense + 1) + w
        p = np.searchsorted(self._pair_ids, vw)
        p_clip = np.minimum(p, len(self._pair_ids) - 1)
        found = self._pair_ids[p_clip] == vw
        raw = np.searchsorted(self._rank_keys, vw * (self._max_rec + 1) + pos)
        return np.where(found, raw - self._pair_start[p_clip], 0)

    def _block_offset_block(
        self, w: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``records[w].block_offset.get(v)`` → (offset, found)."""
        key = w * (self._n_dense + 1) + v
        p = np.searchsorted(self._block_keys, key)
        p_clip = np.minimum(p, len(self._block_keys) - 1)
        found = self._block_keys[p_clip] == key
        return np.where(found, self._block_vals[p_clip], 0), found

    def _execute(self, probe: MachineProbe) -> KernelResult:
        if self.backend == VECTORIZED:
            return self._execute_batched(probe)
        return self._execute_scalar(probe)

    def _execute_batched(self, probe: MachineProbe) -> KernelResult:
        """Lockstep wavefront over query chunks.

        Events are computed step-major but *reassembled* query-major
        from padded per-chunk arrays, so the flushed stream is
        bit-identical to :meth:`_execute_scalar` — same addresses, same
        order, same branch outcomes.
        """
        matches = 0
        successor_total = 0
        extend_steps = 0
        record_base = 1 << 24
        record_bytes = self.RECORD_BYTES
        alu_total = 0
        n_queries = 0
        record_blocks: list[np.ndarray] = []
        rank_blocks: list[np.ndarray] = []
        changed_blocks: list[np.ndarray] = []
        multi_blocks: list[np.ndarray] = []
        emptied_blocks: list[np.ndarray] = []
        fanout: list[bool] = []
        n = self._n_dense
        for chunk in _chunks(self.queries, self.CHUNK):
            size = len(chunk)
            n_queries += size
            lengths = np.asarray([len(q) for q in chunk], dtype=np.int64)
            max_q = int(lengths.max())
            qn = np.zeros((size, max_q), dtype=np.int64)
            for i, query in enumerate(chunk):
                qn[i, : len(query)] = query
            pos = np.searchsorted(self._nodes_sorted, qn)
            pos_clip = np.minimum(pos, n - 1)
            dense = np.where(self._nodes_sorted[pos_clip] == qn, pos_clip, -1)

            cur = dense[:, 0]
            cur_valid = cur >= 0
            start = np.zeros(size, dtype=np.int64)
            end = np.where(cur_valid, self._rec_len[np.maximum(cur, 0)], 0)
            # Event staging: column 0 holds the full_state record load,
            # columns 1.. the per-step events; extraction is row-major.
            ev_record = np.zeros((size, max_q), dtype=np.int64)
            ev_rank = np.zeros((size, max_q), dtype=np.int64)
            ev_changed = np.zeros((size, max_q), dtype=bool)
            ev_multi = np.zeros((size, max_q), dtype=bool)
            ev_emptied = np.zeros((size, max_q), dtype=bool)
            steps_taken = np.zeros(size, dtype=np.int64)
            ev_record[:, 0] = record_base + self._slot_of[np.maximum(cur, 0)] * record_bytes
            active = (lengths > 1) & (end > start)
            for k in range(1, max_q):
                idx = np.flatnonzero(active)
                if idx.size == 0:
                    break
                v = cur[idx]
                w = dense[idx, k]
                slot = self._slot_of[w]
                rec_addr = record_base + slot * record_bytes
                ev_record[idx, k] = rec_addr
                ev_rank[idx, k] = rec_addr + (start[idx] % 4) * 8
                prev_size = end[idx] - start[idx]
                offset, found = self._block_offset_block(w, v)
                rank_s = self._rank_block(v, w, start[idx])
                rank_e = self._rank_block(v, w, end[idx])
                new_start = np.where(found, offset + rank_s, 0)
                new_end = np.where(found, offset + rank_e, 0)
                new_size = np.maximum(0, new_end - new_start)
                ev_changed[idx, k] = new_size != prev_size
                ev_multi[idx, k] = new_size > 1
                empt = new_size == 0
                ev_emptied[idx, k] = empt
                steps_taken[idx] = k
                cur[idx] = w
                start[idx] = new_start
                end[idx] = new_end
                active[idx] = ~empt & (k + 1 < lengths[idx])

            extend_steps += int(steps_taken.sum())
            alu_total += 12 * int(steps_taken.sum())
            # Row-major masked extraction = query-major event order.
            cols = np.arange(max_q, dtype=np.int64)[None, :]
            step_mask = (cols >= 1) & (cols <= steps_taken[:, None])
            rec_mask = step_mask.copy()
            rec_mask[:, 0] = True
            record_blocks.append(ev_record[rec_mask])
            rank_blocks.append(ev_rank[step_mask])
            changed_blocks.append(ev_changed[step_mask])
            multi_blocks.append(ev_multi[step_mask])
            emptied_blocks.append(ev_emptied[step_mask])
            # Per-query epilogue (final sizes, successor fan-out).
            final_sizes = np.maximum(0, end - start)
            matches += int(final_sizes.sum())
            alu_total += int(2 * np.maximum(1, final_sizes).sum())
            for i in range(size):
                if final_sizes[i] > 0:
                    real = int(self._nodes_sorted[cur[i]])
                    record = self.gbwt._records[real]
                    succ: set[int] = set()
                    for index in range(int(start[i]), int(end[i])):
                        succ.add(record.successors[index])
                    successor_total += len(succ)
                    fanout.append(len(succ) > 1)
                else:
                    fanout.append(False)
        probe.load_block(np.concatenate(record_blocks), 16)
        probe.load_block(np.concatenate(rank_blocks), 8)
        probe.alu_bulk(OpClass.SCALAR_ALU, alu_total)
        probe.branch_trace(90, np.concatenate(changed_blocks))
        probe.branch_trace(93, np.concatenate(multi_blocks))
        probe.branch_trace(94, np.concatenate(emptied_blocks))
        probe.branch_trace(91, fanout)
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=n_queries,
            work={
                "matches": float(matches),
                "extend_steps": float(extend_steps),
                "mean_successors": successor_total / n_queries,
            },
        )

    def _execute_scalar(self, probe: MachineProbe) -> KernelResult:
        matches = 0
        successor_total = 0
        extend_steps = 0
        record_base = 1 << 24
        record_bytes = self.RECORD_BYTES
        # The record walks' loads and data-dependent outcomes buffer per
        # batch of queries and flush as blocks (the probe never steers
        # the search, so batching is event-stream equivalent).
        record_loads: list[int] = []
        rank_loads: list[int] = []
        alu_total = 0
        size_changed: list[bool] = []
        multi_match: list[bool] = []
        emptied: list[bool] = []
        fanout: list[bool] = []
        for query in self.queries:
            state = self.gbwt.full_state(query[0])
            record_loads.append(
                record_base + self.record_offset[query[0]] * record_bytes
            )
            for node_id in query[1:]:
                # Record lookup: adjacent haplotype nodes sit in adjacent
                # records, so these loads stay local.
                slot = self.record_offset[node_id]
                record_loads.append(record_base + slot * record_bytes)
                rank_loads.append(
                    record_base + slot * record_bytes + (state.start % 4) * 8
                )
                previous_size = state.size
                state = self.gbwt.extend(state, node_id)
                extend_steps += 1
                # Data-dependent control flow: rank-scan length, block
                # dispatch, and range-collapse checks all depend on the
                # search state's contents (the front-end / bad-speculation
                # source in Figure 6).
                alu_total += 12
                size_changed.append(state.size != previous_size)
                multi_match.append(state.size > 1)
                if state.is_empty:
                    emptied.append(True)
                    break
                emptied.append(False)
            matches += state.size
            successors = self.gbwt.successors(state)
            successor_total += len(successors)
            alu_total += 2 * max(1, state.size)
            fanout.append(len(successors) > 1)
        probe.load_block(record_loads, 16)
        probe.load_block(rank_loads, 8)
        probe.alu_bulk(OpClass.SCALAR_ALU, alu_total)
        probe.branch_trace(90, size_changed)
        probe.branch_trace(93, multi_match)
        probe.branch_trace(94, emptied)
        probe.branch_trace(91, fanout)
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=len(self.queries),
            work={
                "matches": float(matches),
                "extend_steps": float(extend_steps),
                "mean_successors": successor_total / len(self.queries),
            },
        )

    def validate(self) -> None:
        """find() must agree with a naive haplotype scan on samples."""
        self.ensure_prepared()
        rng = random.Random(self.seed)
        paths = [self.graph.path(name).nodes for name in self.graph.path_names()]

        def naive_count(query: tuple[int, ...]) -> int:
            count = 0
            for path in paths:
                for index in range(len(path) - len(query) + 1):
                    if path[index : index + len(query)] == query:
                        count += 1
            return count

        for query in rng.sample(self.queries, min(20, len(self.queries))):
            got = self.gbwt.find(query).size
            want = naive_count(query)
            if got != want:
                raise KernelError(f"GBWT mismatch for {query}: {got} != {want}")
