"""GBWT kernel: haplotype-aware index search (from vg giraffe).

Inputs (Table 3: "GBWT Query"): random haplotype subpaths of length
1–100, exactly the paper's generator.  The kernel is the ``find``
operation — a chain of last-first mappings through per-node records —
plus the successor enumeration giraffe's filter stage needs.
"""

from __future__ import annotations

import random

from repro.data import derivation, gbwt_queries
from repro.errors import KernelError
from repro.index.gbwt import GBWT
from repro.kernels.base import Kernel, KernelResult, register
from repro.uarch.events import MachineProbe, OpClass


@derivation("gbwt_queries")
def _derive_gbwt_queries(data, spec):
    """The paper's query generator: random haplotype subpaths of length
    1-100.  The GBWT index itself stays in ``prepare`` — it builds in
    linear time from the shared graph, so caching buys nothing."""
    n_queries = max(200, int(2000 * spec.scale))
    return gbwt_queries(data.graph, n_queries, seed=spec.seed)


@register
class GBWTKernel(Kernel):
    """Run ``find`` over a batch of haplotype subpath queries."""

    name = "gbwt"
    parent_tool = "giraffe"
    input_type = "gbwt query"

    #: Modelled record size: the GBWT's run-length-compressed records
    #: are tens of bytes (Siren et al.).
    RECORD_BYTES = 48

    def prepare(self) -> None:
        data = self.dataset()
        self.graph = data.graph
        self.gbwt = GBWT.from_graph(data.graph)
        self.queries = self.derived("gbwt_queries")
        if not self.queries:
            raise KernelError("no GBWT queries generated")
        # Record layout in haplotype-path order: consecutive nodes of a
        # haplotype sit in adjacent records, the locality property the
        # paper credits for GBWT *not* being memory bound.
        self.record_offset: dict[int, int] = {}
        slot = 0
        for name in data.graph.path_names():
            for node_id in data.graph.path(name).nodes:
                if node_id not in self.record_offset:
                    self.record_offset[node_id] = slot
                    slot += 1

    def _execute(self, probe: MachineProbe) -> KernelResult:
        matches = 0
        successor_total = 0
        extend_steps = 0
        record_base = 1 << 24
        record_bytes = self.RECORD_BYTES
        # The record walks' loads and data-dependent outcomes buffer per
        # batch of queries and flush as blocks (the probe never steers
        # the search, so batching is event-stream equivalent).
        record_loads: list[int] = []
        rank_loads: list[int] = []
        alu_total = 0
        size_changed: list[bool] = []
        multi_match: list[bool] = []
        emptied: list[bool] = []
        fanout: list[bool] = []
        for query in self.queries:
            state = self.gbwt.full_state(query[0])
            record_loads.append(
                record_base + self.record_offset[query[0]] * record_bytes
            )
            for node_id in query[1:]:
                # Record lookup: adjacent haplotype nodes sit in adjacent
                # records, so these loads stay local.
                slot = self.record_offset[node_id]
                record_loads.append(record_base + slot * record_bytes)
                rank_loads.append(
                    record_base + slot * record_bytes + (state.start % 4) * 8
                )
                previous_size = state.size
                state = self.gbwt.extend(state, node_id)
                extend_steps += 1
                # Data-dependent control flow: rank-scan length, block
                # dispatch, and range-collapse checks all depend on the
                # search state's contents (the front-end / bad-speculation
                # source in Figure 6).
                alu_total += 12
                size_changed.append(state.size != previous_size)
                multi_match.append(state.size > 1)
                if state.is_empty:
                    emptied.append(True)
                    break
                emptied.append(False)
            matches += state.size
            successors = self.gbwt.successors(state)
            successor_total += len(successors)
            alu_total += 2 * max(1, state.size)
            fanout.append(len(successors) > 1)
        probe.load_block(record_loads, 16)
        probe.load_block(rank_loads, 8)
        probe.alu_bulk(OpClass.SCALAR_ALU, alu_total)
        probe.branch_trace(90, size_changed)
        probe.branch_trace(93, multi_match)
        probe.branch_trace(94, emptied)
        probe.branch_trace(91, fanout)
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=len(self.queries),
            work={
                "matches": float(matches),
                "extend_steps": float(extend_steps),
                "mean_successors": successor_total / len(self.queries),
            },
        )

    def validate(self) -> None:
        """find() must agree with a naive haplotype scan on samples."""
        self.ensure_prepared()
        rng = random.Random(self.seed)
        paths = [self.graph.path(name).nodes for name in self.graph.path_names()]

        def naive_count(query: tuple[int, ...]) -> int:
            count = 0
            for path in paths:
                for index in range(len(path) - len(query) + 1):
                    if path[index : index + len(query)] == query:
                        count += 1
            return count

        for query in rng.sample(self.queries, min(20, len(self.queries))):
            got = self.gbwt.find(query).size
            want = naive_count(query)
            if got != want:
                raise KernelError(f"GBWT mismatch for {query}: {got} != {want}")
