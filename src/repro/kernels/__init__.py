"""PangenomicsBench: the benchmark suite's kernels and datasets.

Importing this package registers all kernels:

>>> from repro.kernels import create_kernel, kernel_names
>>> kernel_names()
['gbv', 'gbwt', 'gssw', 'gwfa-cr', 'gwfa-lr', 'pgsgd', 'ssw', 'tc', 'tsu']
"""

from repro.kernels.base import (
    BACKENDS,
    GPU,
    KERNEL_CLASSES,
    KERNEL_REGISTRY,
    SCALAR,
    VECTORIZED,
    Kernel,
    KernelResult,
    create_kernel,
    kernel_backends,
    kernel_names,
    register,
    resolve_backend,
)
from repro.kernels.datasets import (
    SuiteData,
    gbwt_queries,
    mutate_sequence,
    suite_data,
    tsu_pairs,
)

# Importing the kernel modules registers them.
from repro.kernels.gbv_kernel import GBVKernel, extract_gbv_inputs
from repro.kernels.gbwt_kernel import GBWTKernel
from repro.kernels.gssw_kernel import GSSWKernel, extract_gssw_inputs
from repro.kernels.gwfa_kernel import (
    GWFAChromosomeKernel,
    GWFALongReadKernel,
    extract_gwfa_inputs,
)
from repro.kernels.pgsgd_kernel import PGSGDKernel
from repro.kernels.ssw_kernel import SSWKernel, extract_ssw_inputs
from repro.kernels.tc_kernel import TCKernel
from repro.kernels.tsu_kernel import TSUKernel

#: The paper's eight suite kernels (Table 3 order-ish).
SUITE_KERNELS = ("gssw", "gbwt", "gbv", "gwfa-lr", "gwfa-cr", "tc", "pgsgd", "tsu")
#: The seven CPU kernel configurations characterized in Figures 6-8 /
#: Table 6: six distinct kernels, with GWFA contributing two entries
#: (its long-read and chromosome input classes are profiled separately).
CPU_KERNELS = ("gssw", "gbv", "gbwt", "gwfa-cr", "gwfa-lr", "pgsgd", "tc")

__all__ = [
    "BACKENDS", "GPU", "KERNEL_CLASSES", "KERNEL_REGISTRY", "SCALAR",
    "VECTORIZED", "Kernel", "KernelResult", "create_kernel",
    "kernel_backends", "kernel_names", "register", "resolve_backend",
    "SuiteData", "gbwt_queries", "mutate_sequence", "suite_data", "tsu_pairs",
    "GBVKernel", "extract_gbv_inputs",
    "GBWTKernel",
    "GSSWKernel", "extract_gssw_inputs",
    "GWFAChromosomeKernel", "GWFALongReadKernel", "extract_gwfa_inputs",
    "PGSGDKernel",
    "SSWKernel", "extract_ssw_inputs",
    "TCKernel",
    "TSUKernel",
    "SUITE_KERNELS", "CPU_KERNELS",
]
