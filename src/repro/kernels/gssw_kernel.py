"""GSSW kernel: graph SIMD Smith–Waterman (extracted from vg map).

Inputs (Table 3: "Read Fragment"): (query, acyclic subgraph) pairs,
produced by running vg map's seeding and clustering stages and dumping
what its alignment stage would receive — the same extract-at-the-
boundary method the paper uses.
"""

from __future__ import annotations

import random
import weakref

from repro.align.gssw import GSSW, graph_smith_waterman_scalar
from repro.align.scoring import VG_DEFAULT
from repro.data import derivation
from repro.data.streaming import ChunkedSeries, streaming_config
from repro.errors import KernelError
from repro.graph.model import SequenceGraph
from repro.graph.ops import local_subgraph
from repro.index.minimizer import GraphMinimizerIndex
from repro.kernels.base import (
    SCALAR,
    VECTORIZED,
    Kernel,
    KernelResult,
    register,
)
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read
from repro.uarch.events import MachineProbe


def extract_gssw_inputs(
    graph: SequenceGraph,
    reads: list[Read],
    k: int = 15,
    w: int = 10,
    context_radius: int = 160,
    index: "GraphMinimizerIndex | None" = None,
) -> list[tuple[str, SequenceGraph]]:
    """Run the pre-alignment stages and collect GSSW's (query, subgraph)
    inputs — shared by the kernel and the Figure 10/11 case studies.

    Pass a prebuilt *index* to amortize the minimizer-index build over
    many calls (the streaming chunks do; it is a pure function of the
    graph, so extraction output is unchanged)."""
    if index is None:
        index = GraphMinimizerIndex(graph, k=k, w=w)
    items: list[tuple[str, SequenceGraph]] = []
    for read in reads:
        seeds, flipped = index.oriented_seeds(read.sequence)
        if not seeds:
            continue
        sequence = reverse_complement(read.sequence) if flipped else read.sequence
        anchor = seeds[len(seeds) // 2]
        subgraph = local_subgraph(
            graph, anchor.node_id, radius_bp=len(read) + context_radius, acyclic=True
        )
        items.append((sequence, subgraph))
    return items


@derivation("gssw_inputs")
def _derive_gssw_inputs(data, spec):
    """vg map's pre-alignment stages, dumped at the GSSW boundary."""
    return extract_gssw_inputs(data.graph, list(data.short_reads))


#: Process-local minimizer indexes keyed by graph identity, so streaming
#: chunk builds share one index instead of rebuilding the dominant
#: pre-alignment stage per chunk.  (A weak key: the cache cannot pin a
#: corpus the store has evicted.  Not a store derivation — a derivation
#: build holds the spec's flock, so it must not re-enter ``derived()``.)
_INDEX_CACHE: "weakref.WeakKeyDictionary[SequenceGraph, GraphMinimizerIndex]" \
    = weakref.WeakKeyDictionary()


def _shared_minimizer_index(graph: SequenceGraph) -> GraphMinimizerIndex:
    index = _INDEX_CACHE.get(graph)
    if index is None:
        index = GraphMinimizerIndex(graph, k=15, w=10)
        _INDEX_CACHE[graph] = index
    return index


@derivation("gssw_inputs_chunk")
def _derive_gssw_inputs_chunk(data, spec, start=0, stop=0):
    """The ``gssw_inputs`` extraction restricted to reads
    ``start..stop``.  Extraction is per-read (the minimizer index is a
    pure function of the graph), so concatenating chunks reproduces the
    monolithic list exactly — seed-filtered reads and all."""
    return extract_gssw_inputs(data.graph, list(data.short_reads)[start:stop],
                               index=_shared_minimizer_index(data.graph))


@register
class GSSWKernel(Kernel):
    """Align short-read fragments to seed-local acyclic subgraphs."""

    name = "gssw"
    parent_tool = "vg_map"
    input_type = "read fragment + subgraph"
    #: The striped-SIMD aligner, with the scalar graph-SW oracle
    #: selectable as a backend.
    SUPPORTED_BACKENDS = (SCALAR, VECTORIZED)

    def prepare(self) -> None:
        config = streaming_config()
        if config is not None:
            self.items = ChunkedSeries(
                self.spec, "gssw_inputs_chunk",
                len(self.dataset().short_reads), config.chunk_items,
            )
        else:
            self.items = self.derived("gssw_inputs")
        if not self.items:
            raise KernelError("no GSSW inputs extracted")

    def _execute(self, probe: MachineProbe) -> KernelResult:
        cells = 0
        score_total = 0
        subgraph_bases = 0
        for query, subgraph in self.items:
            aligner = GSSW(query, VG_DEFAULT, probe=probe,
                           backend=self.backend)
            result = aligner.align(subgraph)
            cells += result.cells_computed
            score_total += result.score
            subgraph_bases += subgraph.total_sequence_length
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=len(self.items),
            work={
                "dp_cells": float(cells),
                "score_total": float(score_total),
                "mean_subgraph_bases": subgraph_bases / len(self.items),
            },
        )

    def validate(self) -> None:
        """Striped scores must equal the scalar graph-SW oracle."""
        self.ensure_prepared()
        rng = random.Random(self.seed)
        sample = rng.sample(self.items, min(3, len(self.items)))
        for query, subgraph in sample:
            fast = GSSW(query, VG_DEFAULT).align(subgraph).score
            slow = graph_smith_waterman_scalar(query, subgraph, VG_DEFAULT).score
            if fast != slow:
                raise KernelError(f"GSSW mismatch: {fast} != {slow}")
