"""GSSW kernel: graph SIMD Smith–Waterman (extracted from vg map).

Inputs (Table 3: "Read Fragment"): (query, acyclic subgraph) pairs,
produced by running vg map's seeding and clustering stages and dumping
what its alignment stage would receive — the same extract-at-the-
boundary method the paper uses.
"""

from __future__ import annotations

import random

from repro.align.gssw import GSSW, graph_smith_waterman_scalar
from repro.align.scoring import VG_DEFAULT
from repro.data import derivation
from repro.errors import KernelError
from repro.graph.model import SequenceGraph
from repro.graph.ops import local_subgraph
from repro.index.minimizer import GraphMinimizerIndex
from repro.kernels.base import Kernel, KernelResult, register
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read
from repro.uarch.events import MachineProbe


def extract_gssw_inputs(
    graph: SequenceGraph,
    reads: list[Read],
    k: int = 15,
    w: int = 10,
    context_radius: int = 160,
) -> list[tuple[str, SequenceGraph]]:
    """Run the pre-alignment stages and collect GSSW's (query, subgraph)
    inputs — shared by the kernel and the Figure 10/11 case studies."""
    index = GraphMinimizerIndex(graph, k=k, w=w)
    items: list[tuple[str, SequenceGraph]] = []
    for read in reads:
        seeds, flipped = index.oriented_seeds(read.sequence)
        if not seeds:
            continue
        sequence = reverse_complement(read.sequence) if flipped else read.sequence
        anchor = seeds[len(seeds) // 2]
        subgraph = local_subgraph(
            graph, anchor.node_id, radius_bp=len(read) + context_radius, acyclic=True
        )
        items.append((sequence, subgraph))
    return items


@derivation("gssw_inputs")
def _derive_gssw_inputs(data, spec):
    """vg map's pre-alignment stages, dumped at the GSSW boundary."""
    return extract_gssw_inputs(data.graph, list(data.short_reads))


@register
class GSSWKernel(Kernel):
    """Align short-read fragments to seed-local acyclic subgraphs."""

    name = "gssw"
    parent_tool = "vg_map"
    input_type = "read fragment + subgraph"

    def prepare(self) -> None:
        self.items = self.derived("gssw_inputs")
        if not self.items:
            raise KernelError("no GSSW inputs extracted")

    def _execute(self, probe: MachineProbe) -> KernelResult:
        cells = 0
        score_total = 0
        subgraph_bases = 0
        for query, subgraph in self.items:
            aligner = GSSW(query, VG_DEFAULT, probe=probe)
            result = aligner.align(subgraph)
            cells += result.cells_computed
            score_total += result.score
            subgraph_bases += subgraph.total_sequence_length
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=len(self.items),
            work={
                "dp_cells": float(cells),
                "score_total": float(score_total),
                "mean_subgraph_bases": subgraph_bases / len(self.items),
            },
        )

    def validate(self) -> None:
        """Striped scores must equal the scalar graph-SW oracle."""
        self.ensure_prepared()
        rng = random.Random(self.seed)
        sample = rng.sample(self.items, min(3, len(self.items)))
        for query, subgraph in sample:
            fast = GSSW(query, VG_DEFAULT).align(subgraph).score
            slow = graph_smith_waterman_scalar(query, subgraph, VG_DEFAULT).score
            if fast != slow:
                raise KernelError(f"GSSW mismatch: {fast} != {slow}")
