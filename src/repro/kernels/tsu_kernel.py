"""TSU kernel: the GPU wavefront aligner (from PGGB/MC via wfmash).

Inputs (Table 3: "10K long seqs"): sequence pairs at 1% error generated
like the paper's TSU script.  Runs on the SIMT simulator; the kernel's
"work" carries the Table 7 / Figure 9 profiling metrics.
"""

from __future__ import annotations

from repro.align.myers import edit_distance
from repro.data import derivation, tsu_pairs, tsu_pairs_range
from repro.data.streaming import ChunkedSeries, streaming_config
from repro.errors import KernelError
from repro.gpu.tsu import tsu_align_batch
from repro.kernels.base import GPU, Kernel, KernelResult, register
from repro.uarch.events import MachineProbe


def _tsu_pair_count(spec) -> int:
    """Dataset size shared by the monolithic and chunked derivations."""
    return max(4, int(12 * spec.scale))


@derivation("tsu_pairs", needs_corpus=False)
def _derive_tsu_pairs(data, spec, pair_length=2000):
    """The paper's TSU generator: synthetic pairs at the scenario's
    error rate, independent of the shared corpus."""
    return tsu_pairs(_tsu_pair_count(spec), pair_length,
                     error_rate=spec.tsu_error_rate, seed=spec.seed)


@derivation("tsu_pairs_chunk", needs_corpus=False)
def _derive_tsu_pairs_chunk(data, spec, pair_length=2000, start=0, stop=0):
    """Pairs ``start..stop`` of the ``tsu_pairs`` dataset — identical to
    a slice of it (per-index RNG substreams), built without the rest."""
    return tsu_pairs_range(start, stop, pair_length,
                           error_rate=spec.tsu_error_rate, seed=spec.seed)


@register
class TSUKernel(Kernel):
    """Batch-align sequence pairs with the simulated GPU WFA."""

    name = "tsu"
    parent_tool = "pggb"
    input_type = "sequence pairs"
    #: GPU-native: the kernel *is* the SIMT device model, so there is
    #: no CPU backend to select.
    SUPPORTED_BACKENDS = (GPU,)
    DEFAULT_BACKEND = GPU

    #: Scaled stand-in for the paper's 10 kbp pairs.
    pair_length = 2000
    #: Modelled batch replication: the paper's TSU batches hold tens of
    #: thousands of pairs; replaying each simulated pair's trace this
    #: many times fills the GPU so the Table 7 utilization counters (the
    #: ``gpu`` study) reflect a saturated device, not a toy batch.
    replicate = 500

    def prepare(self) -> None:
        config = streaming_config()
        if config is not None:
            self.pairs = ChunkedSeries(
                self.spec, "tsu_pairs_chunk", _tsu_pair_count(self.spec),
                config.chunk_items, params={"pair_length": self.pair_length},
            )
        else:
            self.pairs = self.derived("tsu_pairs",
                                      pair_length=self.pair_length)

    def _execute(self, probe: MachineProbe) -> KernelResult:
        result = tsu_align_batch(self.pairs, replicate=self.replicate)
        report = result.report
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=len(self.pairs),
            work={
                "gpu_time_ms": report.time_ms,
                "theoretical_occupancy": report.theoretical_occupancy,
                "achieved_occupancy": report.achieved_occupancy,
                "warp_utilization": report.warp_utilization,
                "memory_bw_utilization": report.memory_bw_utilization,
                "single_lane_extend_fraction": result.single_lane_extend_fraction,
                "distance_total": float(sum(result.distances)),
            },
        )

    def validate(self) -> None:
        """GPU distances must equal exact edit distances (short sample)."""
        short = tsu_pairs(2, 300, error_rate=0.02, seed=self.seed)
        result = tsu_align_batch(short)
        for (a, b), got in zip(short, result.distances):
            want = edit_distance(a, b)
            if got != want:
                raise KernelError(f"TSU distance mismatch: {got} != {want}")
