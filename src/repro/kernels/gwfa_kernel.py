"""GWFA kernels: graph wavefront gap bridging (from minigraph).

Two variants like the paper's Table 3: ``gwfa-lr`` bridges gaps between
chained long-read anchors ("Read Gaps"), ``gwfa-cr`` bridges the much
larger gaps of chromosome-assembly mapping ("Chrom Gaps") — longer
sequences covering more nodes, hence more control and memory divergence
and a *lower* IPC (Section 5.2).
"""

from __future__ import annotations

import random

from repro.align.gwfa import gwfa_align, graph_edit_distance_from
from repro.data import derivation
from repro.errors import AlignmentError, KernelError
from repro.graph.model import SequenceGraph
from repro.index.minimizer import GraphMinimizerIndex
from repro.align.chain import anchors_from_seeds, chain_anchors
from repro.kernels.base import Kernel, KernelResult, register
from repro.sequence.alphabet import reverse_complement
from repro.sequence.records import Read
from repro.uarch.events import MachineProbe


def extract_gwfa_inputs(
    graph: SequenceGraph,
    reads: list[Read],
    k: int = 17,
    w: int = 20,
    max_gap: int = 600,
) -> list[tuple[str, int]]:
    """Minigraph's chaining stage up to the GWFA boundary: for each pair
    of consecutive chain anchors, the read gap sequence and the graph
    node to bridge from."""
    index = GraphMinimizerIndex(graph, k=k, w=w)
    items: list[tuple[str, int]] = []
    for read in reads:
        seeds, flipped = index.oriented_seeds(read.sequence)
        if not seeds:
            continue
        sequence = reverse_complement(read.sequence) if flipped else read.sequence
        anchors = anchors_from_seeds(graph, seeds, k)
        chain = chain_anchors(anchors, max_gap=max_gap)
        for left, right in zip(chain.anchors, chain.anchors[1:]):
            gap = sequence[left.read_position + left.length : right.read_position]
            if 0 < len(gap) <= max_gap:
                items.append((gap, left.node_id))
    return items


@derivation("gwfa_lr_inputs")
def _derive_gwfa_lr_inputs(data, spec):
    """Minigraph's long-read chaining, dumped at the GWFA boundary."""
    return extract_gwfa_inputs(data.graph, list(data.long_reads))


@derivation("gwfa_cr_inputs")
def _derive_gwfa_cr_inputs(data, spec):
    """Chromosome-assembly mapping: the held-out sample mapped as one
    giant query, so inter-anchor gaps are larger (paper: longer
    sequences -> more nodes -> more divergence)."""
    assembly = data.held_out  # a new sample, not yet in the graph
    fake_read = Read(
        name=assembly.name + "_as_read",
        sequence=assembly.sequence,
        truth_name=assembly.name,
        truth_start=0,
        truth_end=len(assembly),
    )
    items = extract_gwfa_inputs(data.graph, [fake_read], w=30, max_gap=4000)
    # Keep only the larger gaps (chromosome mapping's signature).
    items.sort(key=lambda item: len(item[0]), reverse=True)
    return [item for item in items if len(item[0]) >= 16] or items


class _GWFABase(Kernel):
    """Shared execution for the lr/cr variants."""

    def _execute(self, probe: MachineProbe) -> KernelResult:
        states = 0
        expansions = 0
        cells = 0
        distance_total = 0
        succeeded = 0
        for gap, start_node in self.items:
            try:
                result = gwfa_align(
                    gap, self.graph, start_node, probe=probe,
                    max_score=2 * len(gap) + 32,
                )
            except AlignmentError:
                continue
            succeeded += 1
            states += result.stats.states_processed
            expansions += result.stats.expansions
            cells += result.stats.cells_extended
            distance_total += result.distance
        return KernelResult(
            kernel=self.name,
            wall_seconds=0.0,
            inputs_processed=succeeded,
            work={
                "states_processed": float(states),
                "expansions": float(expansions),
                "cells_extended": float(cells),
                "distance_total": float(distance_total),
                "mean_gap_length": sum(len(g) for g, _ in self.items) / len(self.items),
            },
        )

    def validate(self) -> None:
        """GWFA must agree with the scalar oracle on short samples."""
        self.ensure_prepared()
        rng = random.Random(self.seed)
        sample = rng.sample(self.items, min(3, len(self.items)))
        for gap, start_node in sample:
            short = gap[:40]
            try:
                fast = gwfa_align(short, self.graph, start_node).distance
            except AlignmentError:
                continue
            slow = graph_edit_distance_from(short, self.graph, start_node)
            if fast != slow:
                raise KernelError(f"GWFA mismatch: {fast} != {slow}")


@register
class GWFALongReadKernel(_GWFABase):
    """Read-gap bridging (minigraph-lr)."""

    name = "gwfa-lr"
    parent_tool = "minigraph"
    input_type = "read gaps"

    def prepare(self) -> None:
        self.graph = self.dataset().graph
        self.items = self.derived("gwfa_lr_inputs")
        if not self.items:
            raise KernelError("no GWFA-lr inputs extracted")


@register
class GWFAChromosomeKernel(_GWFABase):
    """Chromosome-gap bridging (minigraph-cr / Minigraph–Cactus).

    The assembly is mapped as one giant query, so inter-anchor gaps are
    larger (paper: longer sequences -> more nodes -> more divergence).
    """

    name = "gwfa-cr"
    parent_tool = "minigraph"
    input_type = "chrom gaps"

    def prepare(self) -> None:
        self.graph = self.dataset().graph
        self.items = self.derived("gwfa_cr_inputs")
        if not self.items:
            raise KernelError("no GWFA-cr inputs extracted")