"""Top-down pipeline-slot attribution (Yasin 2014, as used by VTune).

Attributes the slots of a 4-wide superscalar core to Retiring /
FrontEndBound / BadSpeculationBound / CoreBound / MemoryBound, from a
:class:`~repro.uarch.machine.MachineSummary`:

* Retiring slots equal retired instructions.
* Memory-bound cycles come from the simulated cache hierarchy's actual
  hit levels (amortized by a memory-level-parallelism factor; stores are
  half-weighted for the write buffer).
* Bad speculation comes from the gshare predictor's measured
  mispredictions times the pipeline refill penalty.
* Core-bound cycles are issue-width and dependency-chain limits: kernels
  mark loop-carried operations and the model charges their latencies
  serially — the "complex data dependencies on previous cells" the paper
  blames for the DP kernels' core-boundness.
* Front-end cycles model fetch redirects on taken branches.

Absolute cycle counts are a model, but every input rate (miss levels,
misprediction rate, operation mix, dependence structure) is measured from
the kernels' event streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.uarch.machine import MachineSummary

PIPELINE_WIDTH = 4
MISPREDICT_PENALTY = 17.0
FRONTEND_REDIRECT_COST = 0.6   # cycles per taken branch (fetch bubble share)
MEMORY_LEVEL_PARALLELISM = 4.0
STORE_STALL_WEIGHT = 0.5


@dataclass(frozen=True)
class TopDownResult:
    """Slot fractions plus the derived cycle counts (paper Fig. 6 / Tab. 6)."""

    retiring: float
    frontend_bound: float
    bad_speculation: float
    core_bound: float
    memory_bound: float
    cycles: float
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "retiring": self.retiring,
            "frontend_bound": self.frontend_bound,
            "bad_speculation": self.bad_speculation,
            "core_bound": self.core_bound,
            "memory_bound": self.memory_bound,
        }


def analyze(summary: MachineSummary) -> TopDownResult:
    """Top-down attribution of one instrumented run."""
    instructions = summary.instructions
    if instructions == 0:
        raise SimulationError("cannot analyze an empty run")
    config = summary.cache_config

    issue_cycles = instructions / PIPELINE_WIDTH
    dependency_cycles = summary.dependent_latency_cycles
    base_cycles = max(issue_cycles, dependency_cycles)

    def stall(levels: dict[int, int], weight: float) -> float:
        extra = (
            levels[2] * (config.l2_latency - config.l1_latency)
            + levels[3] * (config.l3_latency - config.l1_latency)
            + levels[4] * (config.memory_latency - config.l1_latency)
        )
        return weight * extra / MEMORY_LEVEL_PARALLELISM

    memory_cycles = stall(summary.load_level_counts, 1.0) + stall(
        summary.store_level_counts, STORE_STALL_WEIGHT
    )
    bad_spec_cycles = summary.branch_stats.mispredictions * MISPREDICT_PENALTY
    frontend_cycles = summary.branch_stats.taken * FRONTEND_REDIRECT_COST

    total_cycles = base_cycles + memory_cycles + bad_spec_cycles + frontend_cycles
    total_slots = PIPELINE_WIDTH * total_cycles
    retiring_slots = float(instructions)
    memory_slots = PIPELINE_WIDTH * memory_cycles
    bad_spec_slots = PIPELINE_WIDTH * bad_spec_cycles
    frontend_slots = PIPELINE_WIDTH * frontend_cycles
    core_slots = max(
        0.0,
        total_slots - retiring_slots - memory_slots - bad_spec_slots - frontend_slots,
    )
    return TopDownResult(
        retiring=retiring_slots / total_slots,
        frontend_bound=frontend_slots / total_slots,
        bad_speculation=bad_spec_slots / total_slots,
        core_bound=core_slots / total_slots,
        memory_bound=memory_slots / total_slots,
        cycles=total_cycles,
        instructions=instructions,
    )
