"""Semantic event interface between kernels and the CPU model.

The paper characterizes kernels with VTune (top-down, cache misses) and
PIN (instruction mix) on real hardware.  Our kernels instead emit
*semantic events* — typed ALU operations, loads/stores with synthetic
addresses, and branches with outcomes — to a :class:`MachineProbe`.
A :class:`NullProbe` makes instrumentation free for pure timing runs;
:class:`repro.uarch.machine.TraceMachine` consumes the same events to
drive a cache simulator, a branch predictor, and the top-down model.

Addresses are synthetic but *structured*: each data structure reserves a
region of a flat address space and kernels report the true index math, so
spatial and temporal locality in the event stream equal the locality of
the real access pattern.
"""

from __future__ import annotations

from enum import Enum


class OpClass(Enum):
    """Hierarchical instruction classes, binned like the paper's Figure 8.

    The paper bins hierarchically (vector > memory > branch > scalar >
    register, read top-to-bottom/left-to-right of their legend); events
    here carry one class each and the binner applies the same precedence.
    """

    VECTOR_ALU = "vector_alu"        # packed SIMD arithmetic/logic
    VECTOR_FP = "vector_fp"          # SSE/AVX floating point (incl. scalar SSE)
    SCALAR_ALU = "scalar_alu"        # integer add/sub/logic/shift
    SCALAR_MUL_DIV = "scalar_muldiv" # multiplies, divides, sqrt
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    REGISTER = "register"            # register-to-register moves
    NOP = "nop"


class MachineProbe:
    """No-op probe; the base class documents the event interface.

    Subclasses override any subset.  All methods must be cheap: kernels
    call them in inner loops.

    Two granularities coexist.  The *scalar* methods (:meth:`load`,
    :meth:`store`, :meth:`branch`, :meth:`alu`) report one event per
    call; the *batched* methods (:meth:`load_block`, :meth:`store_block`,
    :meth:`branch_trace`, :meth:`alu_bulk`) report a whole array of
    events in one call, in stream order.  The base-class batch methods
    fall back to looping over the scalar ones, so a probe that only
    overrides the scalar interface observes exactly the same event
    stream either way; :class:`repro.uarch.machine.TraceMachine`
    overrides the batched methods with vectorized fast paths that are
    bit-identical to the scalar replay.
    """

    __slots__ = ()

    def alu(self, op_class: OpClass, count: int = 1, dependent: bool = False) -> None:
        """*count* arithmetic/logic operations of *op_class*.

        ``dependent=True`` marks operations on a loop-carried dependency
        chain (e.g. DP recurrences along the serial axis): the pipeline
        model charges their full latency serially instead of assuming
        they overlap.
        """

    def load(self, address: int, size: int = 8) -> None:
        """A data load of *size* bytes at synthetic *address*."""

    def store(self, address: int, size: int = 8) -> None:
        """A data store of *size* bytes at synthetic *address*."""

    def branch(self, site: int, taken: bool) -> None:
        """A conditional branch at static *site* with its outcome."""

    def branch_run(self, site: int, taken_count: int) -> None:
        """A loop-back branch taken *taken_count* times then not taken.

        Equivalent to ``taken_count`` taken outcomes plus one not-taken,
        but cheap to record: only the boundary outcomes are *simulated*
        (predictors learn the taken direction after a couple of
        iterations), while the bulk of the run is credited through
        :meth:`branch_bulk` so counting probes see every branch — long
        loops must not under-report the instruction-mix and MPKI
        denominators (paper Figure 8 / Figure 7).
        """
        trained = min(taken_count, 3)
        for _ in range(trained):
            self.branch(site, True)
        remaining = taken_count - trained
        if remaining > 0:
            self.branch_bulk(site, remaining)
        self.branch(site, False)

    def branch_bulk(self, site: int, taken_count: int) -> None:
        """*taken_count* additional taken outcomes of a saturated branch.

        Called by :meth:`branch_run` for the iterations past the
        predictor's warm-up.  Counting probes must credit all of them
        (as correctly-predicted taken branches) without simulating each
        outcome; the no-op default keeps pure timing runs free.
        """

    def load_block(self, addresses, size: int = 8) -> None:
        """A batch of data loads, *size* bytes each, in stream order.

        *addresses* is any integer sequence (list or 1-D numpy array).
        Equivalent to ``for a in addresses: self.load(a, size)`` — the
        base class literally loops — but lets recording probes ingest
        the whole array at once.
        """
        for address in addresses:
            self.load(int(address), size)

    def store_block(self, addresses, size: int = 8) -> None:
        """A batch of data stores, *size* bytes each, in stream order."""
        for address in addresses:
            self.store(int(address), size)

    def branch_trace(self, site: int, outcomes) -> None:
        """A batch of outcomes of the conditional branch at *site*.

        *outcomes* is any boolean sequence (list or 1-D numpy array), in
        stream order.  Equivalent to ``for t in outcomes:
        self.branch(site, t)``.
        """
        for taken in outcomes:
            self.branch(site, bool(taken))

    def alu_bulk(
        self, op_class: OpClass, count: int, dependent_count: int = 0
    ) -> None:
        """*count* operations of *op_class*, of which *dependent_count*
        (<= count) sit on a loop-carried dependency chain.

        Equivalent to one ``alu(..., dependent=True)`` call for the
        dependent portion plus one plain ``alu`` call for the rest.
        """
        if dependent_count:
            self.alu(op_class, dependent_count, dependent=True)
        remaining = count - dependent_count
        if remaining > 0:
            self.alu(op_class, remaining)

    def touch_region(self, address: int, size: int, stride: int = 64) -> None:
        """Sequential loads over [address, address+size) at *stride*."""
        for offset in range(0, size, stride):
            self.load(address + offset, min(stride, size - offset))


class NullProbe(MachineProbe):
    """Do-nothing probe with O(1) batch methods.

    The base class's batch fallbacks loop over the scalar methods so
    counting probes stay correct; for pure timing runs that loop is
    itself overhead, so the shared :data:`NULL_PROBE` overrides every
    entry point with a true no-op.
    """

    __slots__ = ()

    def load_block(self, addresses, size: int = 8) -> None:
        """Ignore a load batch."""

    def store_block(self, addresses, size: int = 8) -> None:
        """Ignore a store batch."""

    def branch_trace(self, site: int, outcomes) -> None:
        """Ignore a branch-outcome batch."""

    def alu_bulk(
        self, op_class: OpClass, count: int, dependent_count: int = 0
    ) -> None:
        """Ignore an ALU batch."""

    def branch_run(self, site: int, taken_count: int) -> None:
        """Ignore a loop-back branch run."""

    def touch_region(self, address: int, size: int, stride: int = 64) -> None:
        """Ignore a region touch."""


#: Shared do-nothing probe for pure timing runs.
NULL_PROBE = NullProbe()


class AddressSpace:
    """Allocates disjoint synthetic address regions for data structures.

    Regions are aligned to 4 KiB pages so distinct structures never share
    cache lines, mirroring separate heap allocations.
    """

    PAGE = 4096

    def __init__(self, base: int = 1 << 20) -> None:
        self._next = base

    def alloc(self, size: int) -> int:
        """Reserve *size* bytes; returns the region's base address."""
        if size < 0:
            raise ValueError("size must be non-negative")
        base = self._next
        pages = (size + self.PAGE - 1) // self.PAGE
        self._next += max(1, pages) * self.PAGE
        return base
