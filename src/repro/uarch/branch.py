"""Branch predictors for the bad-speculation component of the top-down
model.

Kernels report conditional branches as (static site, outcome) pairs; a
gshare predictor (global history XOR site, 2-bit saturating counters)
consumes the stream.  Data-dependent branches (GBV's merge outcomes,
GBWT's index walks) mispredict heavily; loop-ish branches are absorbed by
the history — the same qualitative split VTune shows in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.uarch.cache import _stable_argsort


@dataclass
class BranchStats:
    """Aggregate prediction statistics."""

    branches: int = 0
    mispredictions: int = 0
    taken: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0


class GsharePredictor:
    """Gshare: 2-bit counters indexed by (site XOR global history)."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12) -> None:
        if table_bits < 2 or history_bits < 1:
            raise SimulationError("bad predictor configuration")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self.mask = (1 << table_bits) - 1
        self.history_mask = (1 << history_bits) - 1
        self.table = [2] * (1 << table_bits)  # weakly taken
        self.history = 0
        self.stats = BranchStats()

    def predict_and_update(self, site: int, taken: bool) -> bool:
        """Record one branch; returns True if it was predicted correctly."""
        index = (site ^ self.history) & self.mask
        counter = self.table[index]
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.branches += 1
        if taken:
            self.stats.taken += 1
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1
        if not correct:
            self.stats.mispredictions += 1
        self.history = ((self.history << 1) | int(taken)) & self.history_mask
        return correct

    def predict_and_update_block(self, site: int, outcomes: np.ndarray) -> None:
        """Record a whole outcome stream of one static site, vectorized.

        Bit-identical to calling :meth:`predict_and_update` per outcome.
        The global-history sequence depends only on the outcomes (not on
        the table), so every event's table index is computed up front by
        packing sliding windows of the outcome bits; table cells are
        independent, so events are then grouped by index.  Within a
        cell, each run of same-direction outcomes acts on the 2-bit
        counter as a saturating add whose effect (and misprediction
        count) is a closed form of the starting counter, so runs become
        transition maps over the four counter states and the sequential
        dependence collapses into a log-depth prefix composition of
        those maps (a Hillis-Steele scan with ``np.take_along_axis``).
        """
        bits = np.asarray(outcomes, dtype=np.int64)
        n = bits.shape[0]
        if n == 0:
            return
        if n < 128:
            # Below the measured crossover the fixed numpy-dispatch cost
            # of the vectorized path loses to the scalar loop.
            for taken in bits.tolist():
                self.predict_and_update(site, bool(taken))
            return
        hb = self.history_bits
        seed = np.empty(hb, dtype=np.int64)
        for k in range(hb):
            seed[k] = (self.history >> (hb - 1 - k)) & 1
        ext = np.concatenate([seed, bits])
        windows = np.lib.stride_tricks.sliding_window_view(ext, hb)
        powers = np.left_shift(1, np.arange(hb - 1, -1, -1, dtype=np.int64))
        histories = windows @ powers  # n + 1 values; last = final history
        indices = (site ^ histories[:n]) & self.mask
        order = _stable_argsort(indices, self.mask + 1)
        sorted_idx = indices[order]
        sorted_out = bits[order]
        change = np.empty(n, dtype=bool)
        change[0] = True
        change[1:] = (sorted_idx[1:] != sorted_idx[:-1]) | (
            sorted_out[1:] != sorted_out[:-1]
        )
        run_starts = np.flatnonzero(change)
        run_lengths = np.diff(np.append(run_starts, n))
        runs = run_starts.shape[0]
        cells = sorted_idx[run_starts]
        run_taken = sorted_out[run_starts] != 0
        # Each run's effect as a map over the four counter states: a
        # taken run of length L is a saturating add of L, a not-taken
        # run a saturating subtract, and its mispredictions are the
        # steps spent on the wrong side of the 2-bit threshold.
        states = np.arange(4, dtype=np.int64)
        lengths = run_lengths[:, None]
        transition = np.where(
            run_taken[:, None],
            np.minimum(3, states[None, :] + lengths),
            np.maximum(0, states[None, :] - lengths),
        )
        mispredict_map = np.where(
            run_taken[:, None],
            np.minimum(lengths, np.maximum(0, 2 - states)[None, :]),
            np.minimum(lengths, np.maximum(0, states - 1)[None, :]),
        )
        # Prefix-compose transitions within each cell's run group
        # (log-depth scan); scan[r] then maps a cell's starting counter
        # to its value after runs first..r.
        scan = transition.copy()
        shift = 1
        while shift < runs:
            same_cell = np.zeros(runs, dtype=bool)
            same_cell[shift:] = cells[shift:] == cells[:-shift]
            if not same_cell.any():
                break
            targets = np.flatnonzero(same_cell)
            composed = np.take_along_axis(
                scan[targets], scan[targets - shift], axis=1
            )
            scan[targets] = composed
            shift *= 2
        table_np = np.asarray(self.table, dtype=np.int64)
        initial = table_np[cells]
        first_of_cell = np.empty(runs, dtype=bool)
        first_of_cell[0] = True
        first_of_cell[1:] = cells[1:] != cells[:-1]
        start_counter = np.empty(runs, dtype=np.int64)
        start_counter[first_of_cell] = initial[first_of_cell]
        continuing = np.flatnonzero(~first_of_cell)
        start_counter[continuing] = scan[continuing - 1, initial[continuing]]
        mispredictions = int(
            mispredict_map[np.arange(runs), start_counter].sum()
        )
        last_of_cell = np.empty(runs, dtype=bool)
        last_of_cell[-1] = True
        last_of_cell[:-1] = first_of_cell[1:]
        last_runs = np.flatnonzero(last_of_cell)
        final_counters = scan[last_runs, initial[last_runs]]
        table = self.table
        for cell, value in zip(cells[last_runs].tolist(),
                               final_counters.tolist()):
            table[cell] = value
        self.stats.branches += n
        self.stats.taken += int(bits.sum())
        self.stats.mispredictions += mispredictions
        self.history = int(histories[n])


class BimodalPredictor:
    """Per-site 2-bit counters (no history) — a weaker baseline."""

    def __init__(self, table_bits: int = 12) -> None:
        self.mask = (1 << table_bits) - 1
        self.table = [2] * (1 << table_bits)
        self.stats = BranchStats()

    def predict_and_update(self, site: int, taken: bool) -> bool:
        index = site & self.mask
        counter = self.table[index]
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.branches += 1
        if taken:
            self.stats.taken += 1
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1
        if not correct:
            self.stats.mispredictions += 1
        return correct
