"""Branch predictors for the bad-speculation component of the top-down
model.

Kernels report conditional branches as (static site, outcome) pairs; a
gshare predictor (global history XOR site, 2-bit saturating counters)
consumes the stream.  Data-dependent branches (GBV's merge outcomes,
GBWT's index walks) mispredict heavily; loop-ish branches are absorbed by
the history — the same qualitative split VTune shows in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass
class BranchStats:
    """Aggregate prediction statistics."""

    branches: int = 0
    mispredictions: int = 0
    taken: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0


class GsharePredictor:
    """Gshare: 2-bit counters indexed by (site XOR global history)."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12) -> None:
        if table_bits < 2 or history_bits < 1:
            raise SimulationError("bad predictor configuration")
        self.table_bits = table_bits
        self.mask = (1 << table_bits) - 1
        self.history_mask = (1 << history_bits) - 1
        self.table = [2] * (1 << table_bits)  # weakly taken
        self.history = 0
        self.stats = BranchStats()

    def predict_and_update(self, site: int, taken: bool) -> bool:
        """Record one branch; returns True if it was predicted correctly."""
        index = (site ^ self.history) & self.mask
        counter = self.table[index]
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.branches += 1
        if taken:
            self.stats.taken += 1
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1
        if not correct:
            self.stats.mispredictions += 1
        self.history = ((self.history << 1) | int(taken)) & self.history_mask
        return correct


class BimodalPredictor:
    """Per-site 2-bit counters (no history) — a weaker baseline."""

    def __init__(self, table_bits: int = 12) -> None:
        self.mask = (1 << table_bits) - 1
        self.table = [2] * (1 << table_bits)
        self.stats = BranchStats()

    def predict_and_update(self, site: int, taken: bool) -> bool:
        index = site & self.mask
        counter = self.table[index]
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.branches += 1
        if taken:
            self.stats.taken += 1
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1
        if not correct:
            self.stats.mispredictions += 1
        return correct
