"""TraceMachine: the recording probe that drives the CPU model.

Plugs into any kernel's ``probe`` parameter; every semantic event updates
instruction-mix counters, feeds the cache hierarchy, or trains the branch
predictor.  :meth:`TraceMachine.summary` freezes the run into a
:class:`MachineSummary`, the input to the top-down model and the MPKI /
instruction-mix reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.uarch.branch import BranchStats, GsharePredictor
from repro.uarch.cache import MACHINE_B, CacheConfig, CacheHierarchy
from repro.uarch.events import MachineProbe, OpClass

#: Result latency (cycles) per operation class, charged serially for
#: dependent (loop-carried) operations.
OP_LATENCY: dict[OpClass, float] = {
    OpClass.VECTOR_ALU: 1.0,
    OpClass.VECTOR_FP: 4.0,
    OpClass.SCALAR_ALU: 1.0,
    OpClass.SCALAR_MUL_DIV: 18.0,
    OpClass.LOAD: 4.0,
    OpClass.STORE: 1.0,
    OpClass.BRANCH: 1.0,
    OpClass.REGISTER: 0.5,
    OpClass.NOP: 0.0,
}


@dataclass(frozen=True)
class MachineSummary:
    """Frozen view of one instrumented run."""

    op_counts: dict[OpClass, int]
    load_level_counts: dict[int, int]   # 1=L1 .. 4=memory (loads)
    store_level_counts: dict[int, int]  # same, for stores
    branch_stats: BranchStats
    dependent_latency_cycles: float
    cache_config: CacheConfig
    l1_misses: int
    l2_misses: int
    l3_misses: int

    @property
    def instructions(self) -> int:
        return sum(self.op_counts.values())

    @property
    def loads(self) -> int:
        return self.op_counts.get(OpClass.LOAD, 0)

    @property
    def stores(self) -> int:
        return self.op_counts.get(OpClass.STORE, 0)

    def mpki(self) -> dict[str, float]:
        """Exclusive misses per kilo-instruction (paper Figure 7)."""
        instructions = self.instructions
        if instructions == 0:
            raise SimulationError("no instructions recorded")
        scale = 1000.0 / instructions
        return {
            "l1": (self.l1_misses - self.l2_misses) * scale,
            "l2": (self.l2_misses - self.l3_misses) * scale,
            "l3": self.l3_misses * scale,
        }

    def instruction_mix(self) -> dict[str, float]:
        """Fractional instruction mix with the paper's hierarchical bins
        (Figure 8): vector > memory > branch > scalar > register."""
        instructions = self.instructions
        if instructions == 0:
            raise SimulationError("no instructions recorded")
        vector = (
            self.op_counts.get(OpClass.VECTOR_ALU, 0)
            + self.op_counts.get(OpClass.VECTOR_FP, 0)
        )
        memory = self.loads + self.stores
        branch = self.op_counts.get(OpClass.BRANCH, 0)
        scalar = (
            self.op_counts.get(OpClass.SCALAR_ALU, 0)
            + self.op_counts.get(OpClass.SCALAR_MUL_DIV, 0)
        )
        register = self.op_counts.get(OpClass.REGISTER, 0) + self.op_counts.get(
            OpClass.NOP, 0
        )
        return {
            "vector": vector / instructions,
            "memory": memory / instructions,
            "branch": branch / instructions,
            "scalar": scalar / instructions,
            "register": register / instructions,
        }


class TraceMachine(MachineProbe):
    """Recording probe: cache + branch predictor + instruction counters."""

    def __init__(self, cache_config: CacheConfig = MACHINE_B) -> None:
        self.cache_config = cache_config
        self.cache = CacheHierarchy(cache_config)
        self.predictor = GsharePredictor()
        self.op_counts: dict[OpClass, int] = {op: 0 for op in OpClass}
        self.load_levels = {1: 0, 2: 0, 3: 0, 4: 0}
        self.store_levels = {1: 0, 2: 0, 3: 0, 4: 0}
        self.dependent_latency_cycles = 0.0

    def alu(self, op_class: OpClass, count: int = 1, dependent: bool = False) -> None:
        self.op_counts[op_class] += count
        if dependent:
            self.dependent_latency_cycles += count * OP_LATENCY[op_class]

    def load(self, address: int, size: int = 8) -> None:
        self.op_counts[OpClass.LOAD] += 1
        level = self.cache.access(address, size)
        self.load_levels[level] += 1

    def store(self, address: int, size: int = 8) -> None:
        self.op_counts[OpClass.STORE] += 1
        level = self.cache.access(address, size)
        self.store_levels[level] += 1

    def branch(self, site: int, taken: bool) -> None:
        self.op_counts[OpClass.BRANCH] += 1
        self.predictor.predict_and_update(site, taken)

    def load_block(self, addresses, size: int = 8) -> None:
        addresses = np.asarray(addresses, dtype=np.int64)
        n = addresses.shape[0]
        if n == 0:
            return
        self.op_counts[OpClass.LOAD] += n
        levels = self.cache.access_block(addresses, size)
        counts = np.bincount(levels, minlength=5)
        target = self.load_levels
        for level in (1, 2, 3, 4):
            target[level] += int(counts[level])

    def store_block(self, addresses, size: int = 8) -> None:
        addresses = np.asarray(addresses, dtype=np.int64)
        n = addresses.shape[0]
        if n == 0:
            return
        self.op_counts[OpClass.STORE] += n
        levels = self.cache.access_block(addresses, size)
        counts = np.bincount(levels, minlength=5)
        target = self.store_levels
        for level in (1, 2, 3, 4):
            target[level] += int(counts[level])

    def branch_trace(self, site: int, outcomes) -> None:
        outcomes = np.asarray(outcomes)
        n = outcomes.shape[0]
        if n == 0:
            return
        self.op_counts[OpClass.BRANCH] += n
        self.predictor.predict_and_update_block(site, outcomes)

    def alu_bulk(
        self, op_class: OpClass, count: int, dependent_count: int = 0
    ) -> None:
        self.op_counts[op_class] += count
        if dependent_count:
            self.dependent_latency_cycles += dependent_count * OP_LATENCY[op_class]

    def touch_region(self, address: int, size: int, stride: int = 64) -> None:
        full = size // stride
        if full:
            self.load_block(address + stride * np.arange(full, dtype=np.int64), stride)
        tail = size - full * stride
        if tail > 0:
            self.load(address + full * stride, tail)

    def branch_bulk(self, site: int, taken_count: int) -> None:
        """Credit the saturated iterations of a loop-back branch run: a
        trained predictor gets the remaining taken outcomes right, so
        they count as correctly-predicted branches without per-outcome
        simulation."""
        self.op_counts[OpClass.BRANCH] += taken_count
        self.predictor.stats.branches += taken_count
        self.predictor.stats.taken += taken_count

    def summary(self) -> MachineSummary:
        return MachineSummary(
            op_counts=dict(self.op_counts),
            load_level_counts=dict(self.load_levels),
            store_level_counts=dict(self.store_levels),
            branch_stats=BranchStats(
                branches=self.predictor.stats.branches,
                mispredictions=self.predictor.stats.mispredictions,
                taken=self.predictor.stats.taken,
            ),
            dependent_latency_cycles=self.dependent_latency_cycles,
            cache_config=self.cache_config,
            l1_misses=self.cache.l1.misses,
            l2_misses=self.cache.l2.misses,
            l3_misses=self.cache.l3.misses,
        )
