"""Set-associative cache hierarchy simulator.

Consumes the load/store addresses kernels report and produces per-level
hit/miss counts, from which Figure 7's misses-per-kilo-instruction are
derived.  Misses are *exclusive* like the paper's: an access that misses
L1 but hits L2 is an L2 hit / L1 miss, and only L1 MPKI counts it.

Configurations for the paper's two machines (Table 5) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

LINE_SIZE = 64


@dataclass
class CacheLevel:
    """One LRU set-associative cache level."""

    name: str
    size_bytes: int
    ways: int
    hits: int = 0
    misses: int = 0
    _sets: list[dict[int, int]] = field(default_factory=list, repr=False)
    _clock: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0:
            raise SimulationError(f"bad cache config for {self.name}")
        n_sets = self.size_bytes // (LINE_SIZE * self.ways)
        if n_sets == 0:
            raise SimulationError(f"{self.name}: cache smaller than one set")
        # Round the set count down to a power of two so index masking
        # works; odd capacities (e.g. 1.25 MB 20-way) approximate down.
        self.n_sets = _pow2_floor(n_sets)
        self._sets = [dict() for _ in range(n_sets)]

    def access(self, line: int) -> bool:
        """Access cache line number *line*; returns True on hit."""
        index = line & (self.n_sets - 1)
        entries = self._sets[index]
        self._clock += 1
        if line in entries:
            entries[line] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.ways:
            victim = min(entries, key=entries.get)  # LRU
            del entries[victim]
        entries[line] = self._clock
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


@dataclass(frozen=True)
class CacheConfig:
    """Capacity/associativity of a three-level hierarchy."""

    name: str
    l1_size: int
    l1_ways: int
    l2_size: int
    l2_ways: int
    l3_size: int
    l3_ways: int
    # Load-to-use latencies (cycles), used by the top-down model.
    l1_latency: int = 4
    l2_latency: int = 14
    l3_latency: int = 44
    memory_latency: int = 170


#: Machine A: Intel Xeon E5-2697 v3 (Table 5); L3 is per-socket 35 MB but
#: sized down to the per-core share a single-threaded kernel effectively
#: owns under LRU competition-free conditions.
MACHINE_A = CacheConfig(
    name="machine_a",
    l1_size=32 * 1024, l1_ways=8,
    l2_size=256 * 1024, l2_ways=8,
    l3_size=32 * 1024 * 1024, l3_ways=16,
)

#: Machine B: Intel Xeon Gold 6326 (Table 5) — the kernel analysis machine.
MACHINE_B = CacheConfig(
    name="machine_b",
    l1_size=48 * 1024, l1_ways=12,
    l2_size=1280 * 1024, l2_ways=20,
    l3_size=24 * 1024 * 1024, l3_ways=12,
)


class CacheHierarchy:
    """Three-level inclusive hierarchy fed with byte addresses."""

    def __init__(self, config: CacheConfig = MACHINE_B) -> None:
        self.config = config
        self.l1 = CacheLevel("l1", config.l1_size, config.l1_ways)
        self.l2 = CacheLevel("l2", _pow2_floor(config.l2_size), config.l2_ways)
        self.l3 = CacheLevel("l3", _pow2_floor(config.l3_size), config.l3_ways)
        self.memory_accesses = 0

    def access(self, address: int, size: int = 8) -> int:
        """Access [address, address+size); returns the deepest level
        touched (1 = L1 hit, 2 = L2, 3 = L3, 4 = memory) over the lines
        spanned (worst line wins)."""
        first_line = address // LINE_SIZE
        last_line = (address + max(size, 1) - 1) // LINE_SIZE
        worst = 1
        for line in range(first_line, last_line + 1):
            worst = max(worst, self._access_line(line))
        return worst

    def _access_line(self, line: int) -> int:
        if self.l1.access(line):
            return 1
        if self.l2.access(line):
            return 2
        if self.l3.access(line):
            return 3
        self.memory_accesses += 1
        return 4

    def mpki(self, instructions: int) -> dict[str, float]:
        """Exclusive misses per kilo-instruction at each level."""
        if instructions <= 0:
            raise SimulationError("instructions must be positive for MPKI")
        scale = 1000.0 / instructions
        return {
            "l1": (self.l1.misses - self.l2.misses) * scale,
            "l2": (self.l2.misses - self.l3.misses) * scale,
            "l3": self.l3.misses * scale,
        }


def _pow2_floor(value: int) -> int:
    """Largest power of two <= value (cache sizes like 1.25 MB need it)."""
    result = 1
    while result * 2 <= value:
        result *= 2
    return result
