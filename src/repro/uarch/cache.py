"""Set-associative cache hierarchy simulator.

Consumes the load/store addresses kernels report and produces per-level
hit/miss counts, from which Figure 7's misses-per-kilo-instruction are
derived.  Misses are *exclusive* like the paper's: an access that misses
L1 but hits L2 is an L2 hit / L1 miss, and only L1 MPKI counts it.

Configurations for the paper's two machines (Table 5) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

LINE_SIZE = 64

#: Below this many lines the vectorized batch paths lose to the scalar
#: loop on fixed numpy-dispatch overhead (measured crossover ~600 for
#: the full hierarchy, lower per level); small blocks fall back.
BATCH_CUTOFF = 512
LEVEL_BATCH_CUTOFF = 192


@dataclass
class CacheLevel:
    """One LRU set-associative cache level."""

    name: str
    size_bytes: int
    ways: int
    hits: int = 0
    misses: int = 0
    _sets: list[dict[int, int]] = field(default_factory=list, repr=False)
    _clock: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0:
            raise SimulationError(f"bad cache config for {self.name}")
        n_sets = self.size_bytes // (LINE_SIZE * self.ways)
        if n_sets == 0:
            raise SimulationError(f"{self.name}: cache smaller than one set")
        # Round the set count down to a power of two so index masking
        # works; odd capacities (e.g. 1.25 MB 20-way) approximate down.
        self.n_sets = _pow2_floor(n_sets)
        self._sets = [dict() for _ in range(self.n_sets)]
        # Batch overlay: sets last written by access_block keep their
        # state as fixed-shape arrays (row = set, resident lines in
        # LRU-to-MRU order, `_overlay_len` entries valid).  A set whose
        # `_overlay_valid` byte is 1 is authoritative there, overriding
        # its dict until the scalar path drains it.
        self._overlay_lines: np.ndarray | None = None
        self._overlay_len: np.ndarray | None = None
        self._overlay_valid = bytearray(self.n_sets)
        self._overlay_valid_np = np.frombuffer(
            self._overlay_valid, dtype=np.uint8
        )

    def access(self, line: int) -> bool:
        """Access cache line number *line*; returns True on hit."""
        index = line & (self.n_sets - 1)
        if self._overlay_valid[index]:
            self._drain(index)
        entries = self._sets[index]
        self._clock += 1
        if line in entries:
            entries[line] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.ways:
            victim = min(entries, key=entries.get)  # LRU
            del entries[victim]
        entries[line] = self._clock
        return False

    def _drain(self, index: int) -> None:
        """Materialize one overlay set back into its dict."""
        count = int(self._overlay_len[index])
        entries = {}
        for line in self._overlay_lines[index, :count].tolist():
            self._clock += 1  # LRU..MRU: ascending timestamps
            entries[line] = self._clock
        self._sets[index] = entries
        self._overlay_valid[index] = 0

    def materialize(self) -> None:
        """Drain the whole batch overlay into the per-set dicts.

        Call before inspecting ``_sets`` directly; the scalar and batch
        access paths drain on demand and never need this.
        """
        if self._overlay_lines is None:
            return
        for index in np.flatnonzero(self._overlay_valid_np).tolist():
            self._drain(index)
        self._overlay_lines = None
        self._overlay_len = None

    def access_block(self, lines: np.ndarray) -> np.ndarray:
        """Access a whole line stream; returns a boolean hit array.

        Behaviour-identical to calling :meth:`access` per line, but
        vectorized via the LRU *stack-distance* property: the resident
        lines of a set are always its ``ways`` most recently used
        distinct lines, so an access hits iff fewer than ``ways``
        distinct lines of the same set intervened since its previous
        access.  The stream is grouped by set (sets are independent
        under LRU and stable grouping preserves each set's internal
        order) and split in two:

        * *Repeats* — the line occurred earlier in the batch.  Every
          pre-batch resident is older than the whole batch, so the
          window back to the previous occurrence contains batch
          accesses only; its distinct-line count is bounded wholly
          vectorized (the window length above, the first occurrences
          inside it below), leaving only ambiguous accesses to a
          windowed count.
        * *First occurrences* — resolved against the set's resident
          stack with a fixed-width membership test: a resident at depth
          ``d`` from MRU hits iff ``d`` plus the distinct batch lines
          already accessed in the set, minus those counted twice (newer
          residents also re-accessed earlier in the batch — a small
          per-set dominance count), stays below ``ways``.

        Internal timestamps differ from the scalar path's, but resident
        lines and their recency order (the only state observable
        through behaviour) match exactly.
        """
        n = lines.shape[0]
        hits = np.zeros(n, dtype=bool)
        if n == 0:
            return hits
        if n < LEVEL_BATCH_CUTOFF:
            access = self.access
            for position, line in enumerate(lines.tolist()):
                hits[position] = access(line)
            return hits
        mask = self.n_sets - 1
        ways = self.ways
        order = _stable_argsort(lines & mask, self.n_sets)
        sorted_lines = lines[order]
        sorted_sets = sorted_lines & mask
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_sets[1:], sorted_sets[:-1], out=boundary[1:])
        set_starts = np.flatnonzero(boundary)
        touched = sorted_sets[set_starts]
        n_touched = touched.shape[0]
        access_counts = np.diff(np.append(set_starts, n))
        slot_of = np.repeat(np.arange(n_touched), access_counts)
        # Previous in-batch occurrence of each line (positions in the
        # set-sorted stream; same line => same set => same block).
        by_value = _stable_argsort(sorted_lines, int(sorted_lines.max()) + 1)
        value_sorted = sorted_lines[by_value]
        new_run = np.empty(n, dtype=bool)
        new_run[0] = True
        np.not_equal(value_sorted[1:], value_sorted[:-1], out=new_run[1:])
        prev = np.full(n, -1, dtype=np.int64)
        continuing = np.flatnonzero(~new_run)
        prev[by_value[continuing]] = by_value[continuing - 1]
        first = prev == -1
        firsts_cum = np.cumsum(first)
        hit_sorted = np.zeros(n, dtype=bool)
        # Repeats: hit iff the window (prev, i) holds < ways distinct
        # batch lines.
        repeat = ~first
        window = np.arange(n) - prev - 1
        firsts_in_window = np.where(
            repeat, firsts_cum - firsts_cum[prev], 0
        )
        hit_sorted[repeat & (window < ways)] = True
        ambiguous = np.flatnonzero(repeat & (window >= ways)
                                   & (firsts_in_window < ways))
        if ambiguous.shape[0]:
            prev_list = prev.tolist()
            for position in ambiguous.tolist():
                before = prev_list[position]
                distinct = int(np.count_nonzero(
                    prev[before + 1:position] <= before
                ))
                if distinct < ways:
                    hit_sorted[position] = True
        # First occurrences: membership in the resident stack.
        seed_rows, seed_len = self._collect_seed_rows(touched)
        column = np.arange(ways)
        f_idx = np.flatnonzero(first)
        f_slot = slot_of[f_idx]
        match = (seed_rows[f_slot] == sorted_lines[f_idx][:, None]) & (
            column[None, :] < seed_len[f_slot][:, None]
        )
        matched = np.flatnonzero(match.any(axis=1))
        n_matched = matched.shape[0]
        if n_matched:
            seed_pos = np.argmax(match[matched], axis=1)
            m_slot = f_slot[matched]
            depth = seed_len[m_slot] - 1 - seed_pos
            # Distinct batch lines already accessed in the set = this
            # first occurrence's rank among the set's first occurrences.
            firsts_before = firsts_cum - first
            rank = (firsts_before[f_idx[matched]]
                    - firsts_before[set_starts][m_slot])
            # Residents re-accessed earlier in the batch are in both
            # counts; subtract the per-set dominance count (newer
            # resident AND earlier first occurrence).  At most `ways`
            # residents match per set, so a padded (slots, ways) matrix
            # of matched seed positions covers it.
            m_boundary = np.empty(n_matched, dtype=bool)
            m_boundary[0] = True
            np.not_equal(m_slot[1:], m_slot[:-1], out=m_boundary[1:])
            m_starts = np.flatnonzero(m_boundary)
            m_counts = np.diff(np.append(m_starts, n_matched))
            within = np.arange(n_matched) - np.repeat(m_starts, m_counts)
            slot_matches = np.full((n_touched, ways), -1, dtype=np.int64)
            slot_matches[m_slot, within] = seed_pos
            overlap = (
                (slot_matches[m_slot] > seed_pos[:, None])
                & (column[None, :] < within[:, None])
            ).sum(axis=1)
            hit_sorted[f_idx[matched]] = (depth + rank - overlap) < ways
        hits[order] = hit_sorted
        hit_count = int(np.count_nonzero(hits))
        self.hits += hit_count
        self.misses += n - hit_count
        # New overlay state per touched set: the batch-accessed lines,
        # newest last, stacked on top of the untouched residents.  Runs
        # in the value sort correspond one-to-one to distinct lines; the
        # end of each run is the line's final access position.
        run_end = np.empty(n, dtype=bool)
        run_end[-1] = True
        run_end[:-1] = new_run[1:]
        line_values = value_sorted[new_run]
        last_access = by_value[run_end]
        line_slot = slot_of[last_access]
        by_last = _stable_argsort(last_access, n)
        grouped = by_last[_stable_argsort(line_slot[by_last], n_touched)]
        runs = grouped.shape[0]
        g_slot = line_slot[grouped]
        g_boundary = np.empty(runs, dtype=bool)
        g_boundary[0] = True
        np.not_equal(g_slot[1:], g_slot[:-1], out=g_boundary[1:])
        group_starts = np.flatnonzero(g_boundary)
        group_counts = np.diff(np.append(group_starts, runs))
        keep_counts = np.minimum(group_counts, ways)
        # Untouched residents (valid, not re-accessed) fill what's left,
        # newest first, preserving their relative order below the batch
        # lines.  Left-pack them per row, then take each row's tail.
        shared = np.zeros((n_touched, ways), dtype=bool)
        if n_matched:
            shared[m_slot, seed_pos] = True
        untouched = (column[None, :] < seed_len[:, None]) & ~shared
        cum_untouched = untouched.cumsum(axis=1, dtype=np.int8)
        untouched_counts = cum_untouched[:, -1].astype(np.int64)
        fill_counts = np.minimum(ways - keep_counts, untouched_counts)
        total_counts = keep_counts + fill_counts
        offsets = np.cumsum(total_counts) - total_counts
        flat = np.empty(int(total_counts.sum()), dtype=np.int64)
        if int(fill_counts.sum()):
            # The last fill_counts[t] untouched entries of each row, in
            # row-major order (LRU..MRU preserved).
            take = untouched & (
                cum_untouched
                > (untouched_counts - fill_counts)[:, None].astype(np.int8)
            )
            flat[_segment_indices(offsets, fill_counts)] = seed_rows[take]
        flat[_segment_indices(offsets + fill_counts, keep_counts)] = (
            line_values[grouped][_segment_indices(
                group_starts + group_counts - keep_counts, keep_counts
            )]
        )
        self._store_overlay(touched, total_counts, flat)
        self._clock += n
        return hits

    def _collect_seed_rows(
        self, touched: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resident stacks of the touched sets as a fixed-width matrix.

        Row = one touched set's lines in LRU-to-MRU order, first
        ``seed_len`` entries valid.  Sets live in the overlay are
        gathered vectorized; the rest read their dicts.
        """
        n_touched = touched.shape[0]
        seed_rows = np.zeros((n_touched, self.ways), dtype=np.int64)
        seed_len = np.zeros(n_touched, dtype=np.int64)
        if self._overlay_lines is not None:
            in_overlay = self._overlay_valid_np[touched] != 0
            if in_overlay.any():
                seed_rows[in_overlay] = self._overlay_lines[touched[in_overlay]]
                seed_len[in_overlay] = self._overlay_len[touched[in_overlay]]
            dict_slots = np.flatnonzero(~in_overlay)
        else:
            dict_slots = np.arange(n_touched)
        sets = self._sets
        for slot, set_index in zip(dict_slots.tolist(),
                                   touched[dict_slots].tolist()):
            entries = sets[set_index]
            if entries:
                resident = sorted(entries, key=entries.get)
                seed_rows[slot, :len(resident)] = resident
                seed_len[slot] = len(resident)
        return seed_rows, seed_len

    def _store_overlay(
        self,
        new_sets: np.ndarray,
        new_counts: np.ndarray,
        new_lines: np.ndarray,
    ) -> None:
        """Scatter a batch's per-set state into the overlay arrays."""
        if self._overlay_lines is None:
            self._overlay_lines = np.zeros(
                (self.n_sets, self.ways), dtype=np.int64
            )
            self._overlay_len = np.zeros(self.n_sets, dtype=np.int64)
        row = np.repeat(new_sets, new_counts)
        column = (np.arange(new_lines.shape[0])
                  - np.repeat(np.cumsum(new_counts) - new_counts, new_counts))
        self._overlay_lines[row, column] = new_lines
        self._overlay_len[new_sets] = new_counts
        self._overlay_valid_np[new_sets] = 1

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


@dataclass(frozen=True)
class CacheConfig:
    """Capacity/associativity of a three-level hierarchy."""

    name: str
    l1_size: int
    l1_ways: int
    l2_size: int
    l2_ways: int
    l3_size: int
    l3_ways: int
    # Load-to-use latencies (cycles), used by the top-down model.
    l1_latency: int = 4
    l2_latency: int = 14
    l3_latency: int = 44
    memory_latency: int = 170


#: Machine A: Intel Xeon E5-2697 v3 (Table 5); L3 is per-socket 35 MB but
#: sized down to the per-core share a single-threaded kernel effectively
#: owns under LRU competition-free conditions.
MACHINE_A = CacheConfig(
    name="machine_a",
    l1_size=32 * 1024, l1_ways=8,
    l2_size=256 * 1024, l2_ways=8,
    l3_size=32 * 1024 * 1024, l3_ways=16,
)

#: Machine B: Intel Xeon Gold 6326 (Table 5) — the kernel analysis machine.
MACHINE_B = CacheConfig(
    name="machine_b",
    l1_size=48 * 1024, l1_ways=12,
    l2_size=1280 * 1024, l2_ways=20,
    l3_size=24 * 1024 * 1024, l3_ways=12,
)


class CacheHierarchy:
    """Three-level inclusive hierarchy fed with byte addresses."""

    def __init__(self, config: CacheConfig = MACHINE_B) -> None:
        self.config = config
        self.l1 = CacheLevel("l1", config.l1_size, config.l1_ways)
        self.l2 = CacheLevel("l2", _pow2_floor(config.l2_size), config.l2_ways)
        self.l3 = CacheLevel("l3", _pow2_floor(config.l3_size), config.l3_ways)
        self.memory_accesses = 0

    def access(self, address: int, size: int = 8) -> int:
        """Access [address, address+size); returns the deepest level
        touched (1 = L1 hit, 2 = L2, 3 = L3, 4 = memory) over the lines
        spanned (worst line wins)."""
        first_line = address // LINE_SIZE
        last_line = (address + max(size, 1) - 1) // LINE_SIZE
        if first_line == last_line:
            return self._access_line(first_line)
        worst = 1
        for line in range(first_line, last_line + 1):
            worst = max(worst, self._access_line(line))
        return worst

    def access_block(self, addresses: np.ndarray, size: int = 8) -> np.ndarray:
        """Access a batch of [address, address+size) ranges in stream
        order; returns the per-access deepest level touched (1-4).

        Bit-identical to calling :meth:`access` per address.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n = addresses.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        first = addresses // LINE_SIZE
        last = (addresses + max(size, 1) - 1) // LINE_SIZE
        if np.array_equal(first, last):
            # Common case: every access fits in one line.
            return self._access_lines_block(first)
        counts = last - first + 1
        total = int(counts.sum())
        access_ids = np.repeat(np.arange(n), counts)
        starts = np.cumsum(counts) - counts
        offsets = np.arange(total) - np.repeat(starts, counts)
        lines = first[access_ids] + offsets
        line_levels = self._access_lines_block(lines)
        levels = np.ones(n, dtype=np.int64)
        np.maximum.at(levels, access_ids, line_levels)
        return levels

    def _access_lines_block(self, lines: np.ndarray) -> np.ndarray:
        """Per-line deepest level (1-4) for a line stream, vectorized.

        Consecutive repeats of the same line are guaranteed L1 hits (the
        line was just installed/refreshed and nothing intervened), so
        they are credited to L1 directly and only the deduped residual
        replays through the per-level LRU simulators.  Each level sees
        its miss stream in original order, so results match the scalar
        path exactly.
        """
        n = lines.shape[0]
        if n < BATCH_CUTOFF:
            return np.fromiter(
                map(self._access_line, lines.tolist()),
                dtype=np.int64, count=n,
            )
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        residual = lines[keep]
        duplicates = n - residual.shape[0]
        if duplicates:
            self.l1.hits += duplicates
        l1_hits = self.l1.access_block(residual)
        residual_levels = np.ones(residual.shape[0], dtype=np.int64)
        l1_miss = residual[~l1_hits]
        if l1_miss.shape[0]:
            l2_hits = self.l2.access_block(l1_miss)
            miss_levels = np.full(l1_miss.shape[0], 2, dtype=np.int64)
            l2_miss = l1_miss[~l2_hits]
            if l2_miss.shape[0]:
                l3_hits = self.l3.access_block(l2_miss)
                deep = np.where(l3_hits, 3, 4)
                self.memory_accesses += int(np.count_nonzero(~l3_hits))
                miss_levels[~l2_hits] = deep
            residual_levels[~l1_hits] = miss_levels
        if not duplicates:
            return residual_levels
        levels = np.ones(n, dtype=np.int64)
        levels[keep] = residual_levels
        return levels

    def _access_line(self, line: int) -> int:
        if self.l1.access(line):
            return 1
        if self.l2.access(line):
            return 2
        if self.l3.access(line):
            return 3
        self.memory_accesses += 1
        return 4

    def mpki(self, instructions: int) -> dict[str, float]:
        """Exclusive misses per kilo-instruction at each level."""
        if instructions <= 0:
            raise SimulationError("instructions must be positive for MPKI")
        scale = 1000.0 / instructions
        return {
            "l1": (self.l1.misses - self.l2.misses) * scale,
            "l2": (self.l2.misses - self.l3.misses) * scale,
            "l3": self.l3.misses * scale,
        }


def _stable_argsort(values: np.ndarray, bound: int) -> np.ndarray:
    """Stable argsort of non-negative integers known to be < *bound*.

    Small keys take one or two uint16 radix passes — several times
    faster than a generic 64-bit sort on the block sizes the batch
    paths see.
    """
    if bound <= 1 << 16:
        return np.argsort(values.astype(np.uint16), kind="stable")
    if bound <= 1 << 32:
        inner = np.argsort((values & 0xFFFF).astype(np.uint16), kind="stable")
        high = (values[inner] >> 16).astype(np.uint16)
        return inner[np.argsort(high, kind="stable")]
    return np.argsort(values, kind="stable")


def _segment_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat gather indices for segments ``[starts[k], starts[k]+lengths[k])``."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    return (np.repeat(starts, lengths) + np.arange(total)
            - np.repeat(np.cumsum(lengths) - lengths, lengths))


def _pow2_floor(value: int) -> int:
    """Largest power of two <= value (cache sizes like 1.25 MB need it)."""
    result = 1
    while result * 2 <= value:
        result *= 2
    return result
