"""CPU characterization instruments: probes, caches, predictors, top-down."""

from repro.uarch.branch import BimodalPredictor, BranchStats, GsharePredictor
from repro.uarch.cache import (
    LINE_SIZE,
    MACHINE_A,
    MACHINE_B,
    CacheConfig,
    CacheHierarchy,
    CacheLevel,
)
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass
from repro.uarch.machine import OP_LATENCY, MachineSummary, TraceMachine
from repro.uarch.topdown import (
    PIPELINE_WIDTH,
    TopDownResult,
    analyze,
)

__all__ = [
    "BimodalPredictor", "BranchStats", "GsharePredictor",
    "LINE_SIZE", "MACHINE_A", "MACHINE_B", "CacheConfig", "CacheHierarchy",
    "CacheLevel",
    "NULL_PROBE", "AddressSpace", "MachineProbe", "OpClass",
    "OP_LATENCY", "MachineSummary", "TraceMachine",
    "PIPELINE_WIDTH", "TopDownResult", "analyze",
]
